package registry

import (
	"errors"
	"net"
	"testing"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// dial connects one path to addr and writes the join handshake.
func dial(t *testing.T, addr, streamID string, tok core.Token) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteJoin(c, core.Join{StreamID: streamID, Token: tok}); err != nil {
		t.Fatal(err)
	}
	return c
}

func newToken(t *testing.T) core.Token {
	t.Helper()
	tok, err := core.NewToken()
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// joinOK dials one path, writes the join and requires the stream header
// back: the join was admitted and routed.
func joinOK(t *testing.T, addr, streamID string, tok core.Token) net.Conn {
	t.Helper()
	c := dial(t, addr, streamID, tok)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := core.ReadStreamHeader(c); err != nil {
		c.Close()
		t.Fatalf("join %q not admitted: %v", streamID, err)
	}
	c.SetReadDeadline(time.Time{})
	return c
}

// joinErr dials one path, writes the join and returns the typed error the
// registry (or the routed hub) answered with.
func joinErr(t *testing.T, addr, streamID string, tok core.Token) error {
	t.Helper()
	c := dial(t, addr, streamID, tok)
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err := core.ReadStreamHeader(c)
	return err
}

// newRegistry starts a registry with the given per-stream template and ids,
// listening on loopback. Cleanup closes everything.
func newRegistry(t *testing.T, cfg Config, ids ...string) (*Registry, string) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	for _, id := range ids {
		if _, err := r.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go r.Serve(ln)
	return r, ln.Addr().String()
}

// waitFor polls pred until it holds or the deadline passes.
func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRegistryRouting is the multi-stream routing acceptance test: joins
// land on the stream their DMPJ names, an ended stream answers stream-ended
// while its siblings keep serving, and an id naming no stream answers
// unknown-stream.
func TestRegistryRouting(t *testing.T) {
	const count = 300
	cfg := Config{Hub: hub.Config{
		Stream: core.Config{Mu: 400, PayloadSize: 48, Count: count},
	}}
	r, addr := newRegistry(t, cfg, "alpha", "beta", "gamma", "delta")

	// One subscriber per stream, two paths each, all attached before any
	// stream ends so every trace expects the full count. The stream headers
	// stay unread for core.Receive.
	conns := make(map[string][]net.Conn)
	for _, id := range []string{"alpha", "gamma", "delta"} {
		tok := newToken(t)
		conns[id] = []net.Conn{dial(t, addr, id, tok), dial(t, addr, id, tok)}
		h := r.Hub(id)
		waitFor(t, id+" paths attached", func() bool { return h.ConnCount() == 2 })
	}

	// End beta mid-flight; its id must now answer stream-ended at the
	// registry even though its hub is gone from the routing table.
	if err := r.End("beta"); err != nil {
		t.Fatal(err)
	}

	rejects := []struct {
		name     string
		streamID string
		sentinel error
	}{
		{"ended stream", "beta", core.ErrStreamOver},
		{"unknown stream", "nope", core.ErrUnknownStream},
		{"empty id", "", core.ErrUnknownStream},
		{"ended stream, second ask", "beta", core.ErrStreamOver},
	}
	for _, tc := range rejects {
		err := joinErr(t, addr, tc.streamID, newToken(t))
		if err == nil {
			t.Fatalf("%s: join admitted", tc.name)
		}
		if !errors.Is(err, core.ErrRejected) || !errors.Is(err, tc.sentinel) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.sentinel)
		}
	}

	// The siblings keep serving: every subscriber drains its rebased stream
	// (join point to end) exactly once and to completion.
	for id, cs := range conns {
		tr, err := core.Receive(cs)
		if err != nil {
			t.Fatalf("%s: receive: %v", id, err)
		}
		for _, c := range cs {
			c.Close()
		}
		// Generation starts at Create, so a subscriber that dialed shortly
		// after sees a rebased stream of count minus its join offset.
		if tr.Expected <= 0 || tr.Expected > count {
			t.Fatalf("%s: expected %d, want 1..%d", id, tr.Expected, count)
		}
		seen := make(map[uint32]bool, len(tr.Arrivals))
		for _, a := range tr.Arrivals {
			if seen[a.Pkt] {
				t.Fatalf("%s: packet %d delivered twice", id, a.Pkt)
			}
			if int64(a.Pkt) >= tr.Expected {
				t.Fatalf("%s: packet %d beyond expected %d", id, a.Pkt, tr.Expected)
			}
			seen[a.Pkt] = true
		}
		if int64(len(seen)) != tr.Expected {
			t.Fatalf("%s: delivered %d distinct packets, want %d", id, len(seen), tr.Expected)
		}
	}

	st := r.Stats()
	if st.StreamEnded != 2 || st.UnknownStream != 2 || st.Rejected != 4 {
		t.Fatalf("reject counters = ended %d / unknown %d / total %d, want 2/2/4",
			st.StreamEnded, st.UnknownStream, st.Rejected)
	}
	if got := len(st.Streams); got != 3 {
		t.Fatalf("live streams = %d, want 3", got)
	}
	if len(st.Ended) != 1 || st.Ended[0] != "beta" {
		t.Fatalf("ended = %v, want [beta]", st.Ended)
	}
}

// TestRegistryLifecycle covers Create/End/DrainStream edge cases: invalid
// and duplicate ids, the tombstone making ids single-use, MaxStreams, and
// ending streams that do not exist.
func TestRegistryLifecycle(t *testing.T) {
	r, err := New(Config{
		Hub:        hub.Config{Stream: core.Config{Mu: 200, PayloadSize: 16, Count: 1 << 30}},
		MaxStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Create(""); err == nil {
		t.Fatal("Create(\"\") succeeded")
	}
	if _, err := r.Create("this-id-is-way-too-long!"); err == nil {
		t.Fatal("Create(long id) succeeded")
	}
	if _, err := r.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("a"); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("duplicate Create: %v, want ErrStreamExists", err)
	}
	if _, err := r.Create("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("c"); !errors.Is(err, ErrMaxStreams) {
		t.Fatalf("Create past MaxStreams: %v, want ErrMaxStreams", err)
	}

	if err := r.End("nope"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("End(unknown): %v, want ErrUnknownStream", err)
	}
	if err := r.End("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.End("a"); !errors.Is(err, ErrStreamEnded) {
		t.Fatalf("End(ended): %v, want ErrStreamEnded", err)
	}
	if _, err := r.Create("a"); !errors.Is(err, ErrStreamEnded) {
		t.Fatalf("Create over tombstone: %v, want ErrStreamEnded", err)
	}
	// Ending a stream frees its MaxStreams slot for a fresh id.
	if _, err := r.Create("c"); err != nil {
		t.Fatal(err)
	}
	if drained, err := r.DrainStream("c", 5*time.Second); err != nil || !drained {
		t.Fatalf("DrainStream(c) = %v, %v, want true, nil", drained, err)
	}
	if ids := r.Streams(); len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("Streams() = %v, want [b]", ids)
	}
}

// TestRegistryAdmissionCaps exercises the registry-wide caps layered over
// the per-hub governor: MaxConns is strict and slot-accurate across
// streams, and MaxSubscribers counts all streams while exempting tokens a
// stream already knows.
func TestRegistryAdmissionCaps(t *testing.T) {
	cfg := Config{
		Hub:            hub.Config{Stream: core.Config{Mu: 200, PayloadSize: 16, Count: 1 << 30}},
		MaxSubscribers: 2,
		MaxConns:       3,
	}
	r, addr := newRegistry(t, cfg, "one", "two")

	tokA, tokB := newToken(t), newToken(t)
	a := joinOK(t, addr, "one", tokA)
	defer a.Close()
	b := joinOK(t, addr, "two", tokB)
	defer b.Close()

	// Two subscribers across two streams fill MaxSubscribers: a fresh token
	// on either stream is refused...
	if err := joinErr(t, addr, "one", newToken(t)); !errors.Is(err, core.ErrServerFull) {
		t.Fatalf("fresh token past MaxSubscribers: %v, want ErrServerFull", err)
	}
	// ...but a second path of an admitted token is exempt.
	a2 := joinOK(t, addr, "one", tokA)
	defer a2.Close()

	// Three connections fill MaxConns; even an admitted token's extra path
	// is refused now.
	if err := joinErr(t, addr, "two", tokB); !errors.Is(err, core.ErrServerFull) {
		t.Fatalf("join past MaxConns: %v, want ErrServerFull", err)
	}
	if got := r.ConnCount(); got != 3 {
		t.Fatalf("ConnCount = %d, want 3", got)
	}

	// Closing a path frees its slot: the countedConn must release exactly
	// once even though both the client and the hub close it.
	a2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.ConnCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ConnCount = %d after close, want 2", r.ConnCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	b2 := joinOK(t, addr, "two", tokB)
	defer b2.Close()
}

// TestRegistryDrain covers the registry-wide graceful ladder: BeginDrain
// refuses fresh tokens on every stream while attached subscribers keep
// receiving, and Drain delivers end markers to all of them.
func TestRegistryDrain(t *testing.T) {
	cfg := Config{Hub: hub.Config{
		Stream: core.Config{Mu: 400, PayloadSize: 32, Count: 1 << 30},
	}}
	r, addr := newRegistry(t, cfg, "x", "y")

	cx := dial(t, addr, "x", newToken(t))
	defer cx.Close()
	cy := dial(t, addr, "y", newToken(t))
	defer cy.Close()
	for _, id := range []string{"x", "y"} {
		h := r.Hub(id)
		waitFor(t, id+" path attached", func() bool { return h.ConnCount() == 1 })
	}

	r.BeginDrain()
	if err := joinErr(t, addr, "x", newToken(t)); !errors.Is(err, core.ErrDraining) {
		t.Fatalf("fresh token while draining: %v, want ErrDraining", err)
	}
	if _, err := r.Create("z"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create while draining: %v, want ErrClosed", err)
	}

	done := make(chan error, 2)
	for _, c := range []net.Conn{cx, cy} {
		go func(c net.Conn) {
			_, err := core.Receive([]net.Conn{c})
			done <- err
		}(c)
	}
	if !r.Drain(10 * time.Second) {
		t.Fatal("Drain timed out with reading subscribers")
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("subscriber after drain: %v", err)
		}
	}
}

// TestRegistryAbsoluteJoin: the registry routes joins by stream id but
// must pass the join through wholesale — including the absolute-numbering
// flag an edge relay sets. A mid-stream absolute join must land with
// origin-absolute packet numbers (first arrival well past zero, end
// marker carrying the origin-absolute total) rather than the default
// join-point rebase.
func TestRegistryAbsoluteJoin(t *testing.T) {
	const count = 400
	cfg := Config{Hub: hub.Config{
		Stream: core.Config{Mu: 800, PayloadSize: 32, Count: count},
		// A small ring so the tail has visibly moved by the time we join:
		// an absolute join starts at the tail, not at packet zero.
		LagWindow: 16,
	}}
	r, addr := newRegistry(t, cfg, "live")
	h := r.Hub("live")
	waitFor(t, "mid-stream", func() bool { return h.Generated() >= 100 })

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	join := core.Join{StreamID: "live", Token: newToken(t), Flags: core.JoinFlagAbsolute}
	if err := core.WriteJoin(c, join); err != nil {
		t.Fatal(err)
	}
	tr, err := core.Receive([]net.Conn{c})
	if err != nil {
		t.Fatal(err)
	}
	// Absolute numbering: the end marker is the origin-absolute total, not
	// rebased to the join point.
	if tr.Expected != count {
		t.Fatalf("absolute join Expected = %d, want origin-absolute %d", tr.Expected, count)
	}
	var minPkt uint32 = 1<<32 - 1
	seen := make(map[uint32]bool, len(tr.Arrivals))
	for _, a := range tr.Arrivals {
		if a.Pkt < minPkt {
			minPkt = a.Pkt
		}
		seen[a.Pkt] = true
	}
	if minPkt < 50 {
		t.Fatalf("first absolute packet = %d, want the moved ring tail (>= 50)", minPkt)
	}
	// Everything from the tail onward arrives exactly once.
	if got, want := int64(len(seen)), count-int64(minPkt); got != want {
		t.Fatalf("delivered %d distinct packets, want %d (tail %d to %d)",
			got, want, minPkt, count)
	}
}
