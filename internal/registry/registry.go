// Package registry multiplexes many concurrent live streams behind one
// accept loop.
//
// A hub (internal/hub) serves exactly one stream id; a real origin serves
// many. The registry owns a set of hubs keyed by stream id and routes each
// incoming join by the StreamID already carried in the DMPJ handshake: the
// accept loop reads the 40-byte join, looks the id up, and hands the
// connection to the owning hub's AttachJoined. A join naming no stream is
// answered with a DMPR unknown-stream reject; a join naming a stream that
// has ended keeps getting a stream-ended reject from the registry's
// tombstone long after the hub itself is gone, while sibling streams keep
// serving untouched.
//
// Streams have independent lifecycles: Create starts a stream's generator,
// End stops one gracefully (its paths drain their end markers),
// DrainStream walks the hub's full drain ladder — all without disturbing
// the registry's other streams or its accept loop. Registry-wide admission
// caps (MaxStreams, MaxConns, MaxSubscribers) layer over each hub's own
// governor: the per-hub caps and byte budget keep protecting each stream,
// and the registry adds global ceilings so one origin process has a
// bounded total footprint no matter how load spreads across streams.
//
// Lock hierarchy (see DESIGN.md): Registry.mu is taken strictly before any
// hub lock (Hub.mu ≺ Hub.govMu ≺ shard.mu ≺ ring.mu); no hub code ever
// calls back into the registry. Routing holds Registry.mu only for the
// lookup and cap check, never across a reject write or a hub attach, so a
// slow refused client cannot stall the whole origin's admission path.
package registry

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
)

// Sentinel errors for stream lifecycle misuse.
var (
	// ErrUnknownStream: the id names no live stream.
	ErrUnknownStream = errors.New("registry: unknown stream")
	// ErrStreamEnded: the id belongs to a stream that has ended; ids are
	// not reusable, so joins (and Creates) for it are refused for the
	// registry's lifetime.
	ErrStreamEnded = errors.New("registry: stream ended")
	// ErrStreamExists: Create was asked for an id already serving.
	ErrStreamExists = errors.New("registry: stream exists")
	// ErrMaxStreams: Create would exceed Config.MaxStreams.
	ErrMaxStreams = errors.New("registry: stream limit reached")
	// ErrClosed: the registry has been closed (or is draining, for Create).
	ErrClosed = errors.New("registry: closed")
)

// rejectWriteTimeout bounds the courtesy reject-frame write, exactly as in
// the hub: a refused client that never reads cannot pin a goroutine.
const rejectWriteTimeout = 2 * time.Second

// Config describes a stream registry.
type Config struct {
	// Hub is the per-stream template: every stream Create starts gets this
	// configuration with only StreamID replaced by the stream's id. Zero
	// fields take the hub defaults as usual.
	Hub hub.Config
	// MaxStreams caps concurrently live streams; Create past it returns
	// ErrMaxStreams. 0 = unlimited.
	MaxStreams int
	// MaxSubscribers caps subscriptions across all streams. A join with a
	// token the target stream does not already know is refused with a
	// server-full reject once the registry-wide total reaches the cap. The
	// check is exact for serial joins; concurrent handshakes may land a few
	// over before the counts settle (each hub's own MaxSubscribers stays
	// strict). 0 = unlimited.
	MaxSubscribers int
	// MaxConns caps attached path connections across all streams, strictly:
	// the slot is reserved under the registry lock before the hub sees the
	// connection and released exactly once when the connection closes.
	// 0 = unlimited.
	MaxConns int
	// JoinTimeout bounds how long an accepted connection may take to present
	// its join request. 0 selects hub.DefaultJoinTimeout.
	JoinTimeout time.Duration
	// HandshakeLimit caps connections sitting in the join handshake
	// concurrently across the registry's accept loops.
	// 0 selects hub.DefaultHandshakeLimit.
	HandshakeLimit int
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxStreams < 0 {
		return c, fmt.Errorf("registry: max streams %d < 0", c.MaxStreams)
	}
	if c.MaxSubscribers < 0 {
		return c, fmt.Errorf("registry: max subscribers %d < 0", c.MaxSubscribers)
	}
	if c.MaxConns < 0 {
		return c, fmt.Errorf("registry: max conns %d < 0", c.MaxConns)
	}
	if c.JoinTimeout < 0 {
		return c, fmt.Errorf("registry: join timeout %v < 0", c.JoinTimeout)
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = hub.DefaultJoinTimeout
	}
	if c.HandshakeLimit < 0 {
		return c, fmt.Errorf("registry: handshake limit %d < 0", c.HandshakeLimit)
	}
	if c.HandshakeLimit == 0 {
		c.HandshakeLimit = hub.DefaultHandshakeLimit
	}
	return c, nil
}

// Registry routes joins across many live streams and owns their lifecycles.
type Registry struct {
	cfg Config
	wg  sync.WaitGroup

	closed atomic.Bool // stored under mu, read lock-free

	mu       sync.Mutex
	streams  map[string]*hub.Hub   // guarded by mu; live, join-routable
	ended    map[string]struct{}   // guarded by mu; tombstones of ended ids
	retired  []*hub.Hub            // guarded by mu; ended hubs not yet force-closed
	lns      []net.Listener        // guarded by mu
	pending  map[net.Conn]struct{} // guarded by mu; accepted conns mid-handshake
	draining bool                  // guarded by mu

	// connCount is the registry-wide MaxConns account: incremented only
	// under mu (strict cap), decremented exactly once per connection by the
	// countedConn wrapper.
	connCount atomic.Int64

	rejected      atomic.Int64 // joins the registry itself refused
	unknownStream atomic.Int64 // ... because the id named no stream
	streamEnded   atomic.Int64 // ... because the id's stream had ended
	acceptRetries atomic.Int64 // temporary Accept errors retried with backoff
	created       atomic.Int64 // streams created over the registry's lifetime
}

// New validates cfg and returns an empty registry; add streams with Create.
func New(cfg Config) (*Registry, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Registry{
		cfg:     cfg,
		streams: make(map[string]*hub.Hub),
		ended:   make(map[string]struct{}),
		pending: make(map[net.Conn]struct{}),
	}, nil
}

// countedConn releases its registry connection slot exactly once on Close,
// however many times the hub (or a racing Close path) closes it.
type countedConn struct {
	net.Conn
	r    *Registry
	once sync.Once
}

func (c *countedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() { c.r.connCount.Add(-1) })
	return err
}

// WriteBuffers forwards a vectored write to the wrapped connection, so the
// hub's zero-copy batch path survives the counting wrapper: net.Buffers'
// writev fast path type-asserts the concrete conn and would otherwise
// degrade to one Write call per buffer behind this embedding.
func (c *countedConn) WriteBuffers(bufs net.Buffers) (int64, error) {
	if bw, ok := c.Conn.(hub.BuffersWriter); ok {
		return bw.WriteBuffers(bufs)
	}
	return bufs.WriteTo(c.Conn)
}

// Create starts a new live stream under id using the Hub template and
// returns its hub. Ids are never reusable: creating over a tombstone
// returns ErrStreamEnded, so late joiners of the old stream can still be
// told it ended rather than be spliced into an unrelated successor.
func (r *Registry) Create(id string) (*hub.Hub, error) {
	if err := core.ValidateStreamID(id); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() || r.draining {
		return nil, ErrClosed
	}
	if _, ok := r.ended[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrStreamEnded, id)
	}
	if _, ok := r.streams[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrStreamExists, id)
	}
	if r.cfg.MaxStreams > 0 && len(r.streams) >= r.cfg.MaxStreams {
		return nil, fmt.Errorf("%w (%d live)", ErrMaxStreams, len(r.streams))
	}
	hcfg := r.cfg.Hub
	hcfg.StreamID = id
	h, err := hub.New(hcfg)
	if err != nil {
		return nil, err
	}
	r.streams[id] = h
	r.created.Add(1)
	return h, nil
}

// Hub returns the live stream's hub, or nil if id is not currently serving.
func (r *Registry) Hub(id string) *hub.Hub {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.streams[id]
}

// Streams returns the live stream ids, sorted.
func (r *Registry) Streams() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// endLocked moves id from the live table to the tombstones and returns its
// hub. Caller holds r.mu.
func (r *Registry) endLocked(id string) (*hub.Hub, error) {
	h, ok := r.streams[id]
	if !ok {
		if _, ended := r.ended[id]; ended {
			return nil, fmt.Errorf("%w: %s", ErrStreamEnded, id)
		}
		return nil, fmt.Errorf("%w: %s", ErrUnknownStream, id)
	}
	delete(r.streams, id)
	r.ended[id] = struct{}{}
	r.retired = append(r.retired, h)
	return h, nil
}

// End gracefully ends one stream: generation stops, its attached paths
// drain the ring and receive end markers, and from this moment joins for
// id are answered with a stream-ended reject. Sibling streams are
// unaffected. End does not wait for the drain; use the hub handle (from
// Create or Hub, before End) or DrainStream for a bounded wait.
func (r *Registry) End(id string) error {
	r.mu.Lock()
	h, err := r.endLocked(id)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	h.Stop()
	return nil
}

// DrainStream ends one stream through the hub's full graceful-shutdown
// ladder (stop admitting, stop generating, bounded wait, force-close the
// stragglers) and reports whether every path drained within the timeout.
func (r *Registry) DrainStream(id string, timeout time.Duration) (bool, error) {
	r.mu.Lock()
	h, err := r.endLocked(id)
	r.mu.Unlock()
	if err != nil {
		return false, err
	}
	return h.Drain(timeout), nil
}

// BeginDrain closes admission registry-wide: every live hub stops taking
// fresh tokens (re-attaches still heal) and Create refuses new streams.
// Generation continues; pair with End/Drain to finish.
func (r *Registry) BeginDrain() {
	r.mu.Lock()
	r.draining = true
	hubs := make([]*hub.Hub, 0, len(r.streams))
	for _, h := range r.streams {
		hubs = append(hubs, h)
	}
	r.mu.Unlock()
	for _, h := range hubs {
		h.BeginDrain()
	}
}

// Draining reports whether registry-wide admission has been closed.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Drain is the registry-wide graceful shutdown: admission closes, every
// stream's generation stops, and all paths get until timeout (shared, not
// per stream) to drain their end markers; whatever remains is then
// force-closed. It returns true when everything drained in time.
func (r *Registry) Drain(timeout time.Duration) bool {
	r.BeginDrain()
	r.mu.Lock()
	hubs := r.allHubsLocked()
	for id := range r.streams {
		delete(r.streams, id)
		r.ended[id] = struct{}{}
	}
	r.retired = r.retired[:0]
	r.mu.Unlock()
	for _, h := range hubs {
		h.Stop()
	}
	done := make(chan struct{})
	go func() {
		for _, h := range hubs {
			h.Wait()
		}
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		r.Close()
		return true
	case <-t.C:
		r.Close()
		return false
	}
}

// allHubsLocked snapshots every hub the registry still owns, live and
// retired. Caller holds r.mu.
func (r *Registry) allHubsLocked() []*hub.Hub {
	hubs := make([]*hub.Hub, 0, len(r.streams)+len(r.retired))
	for _, h := range r.streams {
		hubs = append(hubs, h)
	}
	hubs = append(hubs, r.retired...)
	return hubs
}

// rejectConn answers a refused join with the typed reject frame and closes
// the connection, mirroring the hub's refusal path.
func (r *Registry) rejectConn(conn net.Conn, code core.RejectCode) {
	r.rejected.Add(1)
	conn.SetWriteDeadline(time.Now().Add(rejectWriteTimeout))
	_ = core.WriteReject(conn, code)
	_ = conn.Close()
}

// Attach performs the join handshake on conn and routes the connection to
// the stream its join names. It closes conn on any error; refusals answer
// with the typed reject frame and the returned error unwraps to the
// matching core sentinel.
func (r *Registry) Attach(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(r.cfg.JoinTimeout))
	j, err := core.ReadJoin(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("registry: join: %w", err)
	}
	return r.Route(conn, j)
}

// Route admits a connection whose join has already been read: look the
// stream up, apply the registry-wide caps, and hand the connection to the
// owning hub. The registry lock covers only the lookup and cap check —
// never a reject write or the hub attach — so refused or slow clients on
// one stream cannot stall routing for the others.
//
// hotpath — the per-join admission root; a redialing path storm lands
// here once per reconnect attempt.
func (r *Registry) Route(conn net.Conn, j core.Join) error {
	if tc, ok := conn.(*net.TCPConn); ok {
		// The hub's own TCP tuning can't reach through the counting
		// wrapper, so apply it here, from the same template every hub got.
		tc.SetNoDelay(true)
		if r.cfg.Hub.PathWriteBuffer > 0 {
			tc.SetWriteBuffer(r.cfg.Hub.PathWriteBuffer)
		}
	}
	r.mu.Lock()
	if r.closed.Load() {
		r.mu.Unlock()
		r.streamEnded.Add(1)
		r.rejectConn(conn, core.RejectStreamEnded)
		return ErrClosed
	}
	h, live := r.streams[j.StreamID]
	if !live {
		_, ended := r.ended[j.StreamID]
		r.mu.Unlock()
		if ended {
			r.streamEnded.Add(1)
			r.rejectConn(conn, core.RejectStreamEnded)
			return fmt.Errorf("%w: %s: %s", ErrStreamEnded, j.StreamID,
				&core.RejectError{Code: core.RejectStreamEnded})
		}
		r.unknownStream.Add(1)
		r.rejectConn(conn, core.RejectUnknownStream)
		return fmt.Errorf("%w: %q: %s", ErrUnknownStream, j.StreamID,
			&core.RejectError{Code: core.RejectUnknownStream})
	}
	if r.draining && !h.HasSubscriber(j.Token) {
		// Draining answers before any capacity check, like the hub's own
		// admission order: a fresh token during drain is told the truth
		// (draining), not a coincidental server-full.
		r.mu.Unlock()
		r.rejectConn(conn, core.RejectDraining)
		return fmt.Errorf("registry: draining: %w", &core.RejectError{Code: core.RejectDraining})
	}
	if r.cfg.MaxConns > 0 && int(r.connCount.Load()) >= r.cfg.MaxConns {
		r.mu.Unlock()
		r.rejectConn(conn, core.RejectServerFull)
		return fmt.Errorf("registry: %d connections attached: %w",
			r.cfg.MaxConns, &core.RejectError{Code: core.RejectServerFull})
	}
	if r.cfg.MaxSubscribers > 0 {
		total := 0
		for _, lh := range r.streams {
			total += lh.SubscriberCount()
		}
		// Re-attaches of tokens the stream already knows are exempt, like
		// the hub's own fresh-token rule: a full house never strands a
		// subscription that is only healing a flapped path.
		if total >= r.cfg.MaxSubscribers && !h.HasSubscriber(j.Token) {
			r.mu.Unlock()
			r.rejectConn(conn, core.RejectServerFull)
			return fmt.Errorf("registry: %d subscribers attached: %w",
				total, &core.RejectError{Code: core.RejectServerFull})
		}
	}
	r.connCount.Add(1)
	r.mu.Unlock()
	return h.AttachJoined(&countedConn{Conn: conn, r: r}, j) // nolint:hotalloc one wrapper per admitted connection; the hub attach below is its own domain
}

// Serve accepts connections on ln and routes each join to its stream. It
// returns when ln is closed; per-connection failures are counted, not
// returned. The loop carries the hub's accept hardening: capped backoff on
// temporary errors and a handshake concurrency cap shedding slowloris
// herds with a server-full reject.
func (r *Registry) Serve(ln net.Listener) error {
	r.mu.Lock()
	r.lns = append(r.lns, ln)
	closed := r.closed.Load()
	r.mu.Unlock()
	if closed {
		_ = ln.Close()
		return ErrClosed
	}
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.closed.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				r.acceptRetries.Add(1)
				switch {
				case backoff <= 0:
					backoff = 5 * time.Millisecond
				case backoff < time.Second:
					backoff *= 2
					if backoff > time.Second {
						backoff = time.Second
					}
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		r.mu.Lock()
		if r.closed.Load() {
			r.mu.Unlock()
			_ = conn.Close()
			continue
		}
		if len(r.pending) >= r.cfg.HandshakeLimit {
			r.mu.Unlock()
			r.rejectConn(conn, core.RejectServerFull)
			continue
		}
		r.pending[conn] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go func() {
			defer r.wg.Done()
			_ = r.Attach(conn)
			r.mu.Lock()
			delete(r.pending, conn)
			r.mu.Unlock()
		}()
	}
}

// Close force-stops the registry: every stream's hub is closed (paths are
// NOT drained), listeners and mid-handshake connections are cut, and new
// joins and Creates are refused. It waits for all goroutines to exit.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed.Store(true)
	hubs := r.allHubsLocked()
	for id := range r.streams {
		delete(r.streams, id)
		r.ended[id] = struct{}{}
	}
	r.retired = r.retired[:0]
	for _, ln := range r.lns {
		_ = ln.Close()
	}
	for c := range r.pending {
		_ = c.Close()
	}
	r.mu.Unlock()
	for _, h := range hubs {
		h.Close()
	}
	r.wg.Wait()
}

// ConnCount returns the attached path connections across all streams.
func (r *Registry) ConnCount() int { return int(r.connCount.Load()) }

// StreamStats is one live stream's snapshot within Stats.
type StreamStats struct {
	ID  string
	Hub hub.Stats
}

// Stats is a point-in-time snapshot of the registry.
type Stats struct {
	Streams       []StreamStats // live streams, sorted by id
	Ended         []string      // tombstoned ids, sorted
	Created       int64         // streams created over the lifetime
	Conns         int           // attached path connections, all streams
	Handshaking   int           // accepted connections still in the join handshake
	Rejected      int64         // joins the registry refused (unknown, ended, full)
	UnknownStream int64         // ... for an id naming no stream
	StreamEnded   int64         // ... for an id whose stream ended
	AcceptRetries int64         // temporary accept errors retried with backoff
	Draining      bool
}

// Stats snapshots the registry and every live stream. Per-stream hub
// snapshots are taken after the registry lock is released, so a busy
// stream's stats walk never blocks routing for its siblings.
func (r *Registry) Stats() Stats {
	st := Stats{
		Created:       r.created.Load(),
		Conns:         int(r.connCount.Load()),
		Rejected:      r.rejected.Load(),
		UnknownStream: r.unknownStream.Load(),
		StreamEnded:   r.streamEnded.Load(),
		AcceptRetries: r.acceptRetries.Load(),
	}
	r.mu.Lock()
	st.Handshaking = len(r.pending)
	st.Draining = r.draining
	hubs := make([]*hub.Hub, 0, len(r.streams))
	for _, h := range r.streams {
		hubs = append(hubs, h)
	}
	for id := range r.ended {
		st.Ended = append(st.Ended, id)
	}
	r.mu.Unlock()
	for _, h := range hubs {
		st.Streams = append(st.Streams, StreamStats{ID: h.StreamID(), Hub: h.Stats()})
	}
	sort.Slice(st.Streams, func(i, j int) bool { return st.Streams[i].ID < st.Streams[j].ID })
	sort.Strings(st.Ended)
	return st
}
