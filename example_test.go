package dmpstream_test

import (
	"fmt"
	"time"

	"dmpstream"
)

// Predict streaming quality from path characteristics alone: two ADSL-class
// paths carrying a 600 kbit/s live stream.
func ExampleModel_FractionLate() {
	m := dmpstream.Model{
		Paths: []dmpstream.PathParams{
			{LossRate: 0.02, RTT: 100 * time.Millisecond, TimeoutRatio: 2},
			{LossRate: 0.02, RTT: 100 * time.Millisecond, TimeoutRatio: 2},
		},
		PlaybackRate: 50, // packets per second
		Seed:         1,
	}
	agg, _ := m.AggregateThroughput()
	f, _ := m.FractionLate(8 * time.Second)
	fmt.Printf("sigma_a/mu comfortably above 1.6: %v\n", agg/m.PlaybackRate > 1.6)
	fmt.Printf("late fraction below 1e-3: %v\n", f < 1e-3)
	// Output:
	// sigma_a/mu comfortably above 1.6: true
	// late fraction below 1e-3: true
}

// Size the client buffer for a quality target.
func ExampleModel_RequiredStartupDelay() {
	m := dmpstream.Model{
		Paths: []dmpstream.PathParams{
			{LossRate: 0.02, RTT: 150 * time.Millisecond, TimeoutRatio: 4},
			{LossRate: 0.02, RTT: 150 * time.Millisecond, TimeoutRatio: 4},
		},
		PlaybackRate: 40,
		Seed:         1,
	}
	delay, ok, _ := m.RequiredStartupDelay(1e-4, 60*time.Second)
	fmt.Printf("feasible: %v, delay under 30s: %v\n", ok, delay < 30*time.Second)
	// Output:
	// feasible: true, delay under 30s: true
}

// Run the packet-level simulator on a congested two-path topology.
func ExampleSimulateStreaming() {
	paths := []dmpstream.SimPath{
		{BottleneckMbps: 3.7, OneWayDelay: time.Millisecond, BufferPkts: 50, FTPFlows: 9, HTTPFlows: 40},
		{BottleneckMbps: 3.7, OneWayDelay: time.Millisecond, BufferPkts: 50, FTPFlows: 9, HTTPFlows: 40},
	}
	res, _ := dmpstream.SimulateStreaming(paths, 50, 120*time.Second, 1)
	fmt.Printf("all packets delivered: %v\n", res.Arrived == res.Generated)
	playback, arrival := res.LateFraction(10)
	fmt.Printf("orderings agree within 2x: %v\n",
		playback == 0 && arrival == 0 || playback < 2*arrival+0.01 && arrival < 2*playback+0.01)
	// Output:
	// all packets delivered: true
	// orderings agree within 2x: true
}
