package dmpstream_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding artifact at Quick fidelity (the
// laptop-scale rendition; use `go run ./cmd/dmpbench -fidelity full` for
// paper-scale runs) and reports its wall time. The heavy experiments take
// more than a second per iteration, so `go test -bench=.` runs them once.

import (
	"testing"

	"dmpstream/internal/exps"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exps.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(exps.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %q produced no rows", id)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (bottleneck configurations).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2 (measured path parameters, independent
// paths) from packet-level simulation.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (measured path parameters, correlated
// paths).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig4a regenerates Figure 4(a): out-of-order effect, Setting 2-2.
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4(b): sim-vs-model late fraction,
// Setting 2-2.
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkFig5a regenerates Figure 5(a): out-of-order effect, Setting 1-2.
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFig5b regenerates Figure 5(b): sim-vs-model late fraction,
// Setting 1-2.
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, "fig5b") }

// BenchmarkCorrelated regenerates the Section 5.3 correlated-path validation
// (the paper omits these figures for space).
func BenchmarkCorrelated(b *testing.B) { benchExperiment(b, "correlated") }

// BenchmarkFig7a regenerates Figure 7(a): the real implementation over
// emulated Internet paths, out-of-order accounting. Wall-clock streaming.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b): measurement-vs-model scatter over
// emulated Internet paths. Wall-clock streaming.
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig8 regenerates Figure 8: late fraction vs startup delay for
// sigma_a/mu in {1.2..2.0}.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9a regenerates Figure 9(a): required startup delay across loss
// rates and playback rates.
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }

// BenchmarkFig9b regenerates Figure 9(b): required startup delay across loss
// rates and RTTs.
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// BenchmarkFig10 regenerates Figure 10: homogeneous vs heterogeneous paths.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: DMP-streaming vs static allocation.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkToy73 regenerates the Section 7.3 alternating-path example.
func BenchmarkToy73(b *testing.B) { benchExperiment(b, "toy73") }

// BenchmarkExtK runs the K>2 extension (the paper's future work): required
// startup delay versus number of paths at fixed aggregate throughput.
func BenchmarkExtK(b *testing.B) { benchExperiment(b, "extk") }

// BenchmarkExtStored runs the stored-video extension: the cost of the
// liveness constraint.
func BenchmarkExtStored(b *testing.B) { benchExperiment(b, "extstored") }

// BenchmarkAblationTD compares the fast-retransmit eligibility rules of the
// reconstructed per-flow chain.
func BenchmarkAblationTD(b *testing.B) { benchExperiment(b, "ablation-td") }

// BenchmarkAblationSndbuf sweeps the video sender's send-buffer size, the
// granularity of DMP's implicit bandwidth inference.
func BenchmarkAblationSndbuf(b *testing.B) { benchExperiment(b, "ablation-sndbuf") }

// BenchmarkAblationFlavor compares Reno and NewReno video flows.
func BenchmarkAblationFlavor(b *testing.B) { benchExperiment(b, "ablation-flavor") }

// BenchmarkAblationRED compares drop-tail and RED bottleneck queues.
func BenchmarkAblationRED(b *testing.B) { benchExperiment(b, "ablation-red") }

// BenchmarkExtQ1 runs the paper's first intro question end-to-end in the
// packet simulator: one fast access link vs two half-capacity links.
func BenchmarkExtQ1(b *testing.B) { benchExperiment(b, "extq1") }

// BenchmarkToy73Sim reruns the Section 7.3 example with real TCP dynamics.
func BenchmarkToy73Sim(b *testing.B) { benchExperiment(b, "toy73sim") }
