// Package dmpstream is a TCP-based multipath live-streaming library — an
// implementation and performance-modeling toolkit for the DMP-streaming
// scheme of Wang, Wei, Guo and Towsley, "Multipath Live Streaming via TCP:
// Scheme, Performance and Benefits" (CoNEXT 2007).
//
// The package offers three coordinated surfaces:
//
//   - A production implementation of DMP-streaming over real TCP
//     connections: NewServer/Serve stripe a live CBR packet stream across K
//     paths using send-buffer backpressure to infer per-path achievable
//     throughput; Receive reassembles and records a timestamped trace.
//
//   - The paper's analytical model: Model.FractionLate predicts the fraction
//     of late packets for a startup delay from per-path TCP parameters
//     (loss rate, RTT, timeout ratio), and Model.RequiredStartupDelay finds
//     the buffer a target quality needs. This answers provisioning questions
//     ("can two 1.5 Mbps DSL lines carry a 2 Mbps live stream?") without
//     running traffic.
//
//   - A packet-level network simulator (SimulateStreaming) with full TCP
//     Reno, drop-tail bottlenecks and background traffic, for studying the
//     scheme under controlled congestion.
//
// The internal packages contain the substrates: internal/tcpsim (TCP Reno on
// a discrete-event engine), internal/dmpmodel (the composed Markov chain),
// internal/emunet (WAN emulation for real sockets), and internal/exps (the
// paper's full experiment suite; see EXPERIMENTS.md).
package dmpstream

import (
	"fmt"
	"io"
	"net"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/dmpmodel"
	"dmpstream/internal/hub"
	"dmpstream/internal/netsim"
	"dmpstream/internal/registry"
	"dmpstream/internal/relay"
	"dmpstream/internal/sim"
	"dmpstream/internal/simstream"
	"dmpstream/internal/tcpmodel"
	"dmpstream/internal/tcpsim"
	"dmpstream/internal/trafficgen"
)

// ---------- Real streaming over TCP ----------

// StreamConfig describes a live CBR video source.
type StreamConfig struct {
	// Rate is the packet generation (= playback) rate in packets per second.
	Rate float64
	// PayloadSize is the payload bytes per packet (default 1000).
	PayloadSize int
	// Count is the number of packets to stream; 0 streams until Stop.
	Count int64
	// Fill, if non-nil, fills each packet's payload with content.
	Fill func(pkt uint32, buf []byte)
	// WriteStallTimeout bounds each per-path write; a path stalling longer
	// enters the health state machine (stalled → dead) instead of blocking
	// the stream forever. 0 keeps blocking writes.
	WriteStallTimeout time.Duration
	// StallRetries is how many consecutive stalled writes a path may absorb
	// before it is declared dead (0 = the first stall kills it).
	StallRetries int
	// ResendWindow, when positive, requeues the last N packets a dead path
	// wrote so surviving paths retransmit them; the receiver deduplicates.
	ResendWindow int
}

// Server streams a live source over multiple TCP paths using DMP-streaming.
type Server struct{ inner *core.Server }

// NewServer validates cfg and creates a streaming server.
func NewServer(cfg StreamConfig) (*Server, error) {
	inner, err := core.NewServer(core.Config{
		Mu:                cfg.Rate,
		PayloadSize:       cfg.PayloadSize,
		Count:             cfg.Count,
		Fill:              cfg.Fill,
		WriteStallTimeout: cfg.WriteStallTimeout,
		StallRetries:      cfg.StallRetries,
		ResendWindow:      cfg.ResendWindow,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Serve streams over the given path connections (one TCP connection per
// path), blocking until the stream completes. It returns the number of
// packets generated.
func (s *Server) Serve(conns []net.Conn) (int64, error) { return s.inner.Serve(conns) }

// Stop ends a live (Count=0) stream; queued packets still drain.
func (s *Server) Stop() { s.inner.Stop() }

// Session is a running stream with dynamic path membership: paths may be
// added while streaming, and a failed path leaves the rest carrying the
// stream.
type Session struct{ inner *core.Session }

// Start begins generation and returns a Session; attach paths with AddPath
// and finish with Wait. Serve is the static-membership convenience wrapper.
func (s *Server) Start() *Session { return &Session{inner: s.inner.Start()} }

// AddPath attaches a connection as a new path, returning its index.
func (sess *Session) AddPath(conn net.Conn) int { return sess.inner.AddPath(conn) }

// RemovePath gracefully drains a path: its sender stops fetching and emits
// an end marker; the remaining paths absorb the load.
func (sess *Session) RemovePath(k int) { sess.inner.RemovePath(k) }

// Wait blocks until the stream completes; it returns the number of packets
// generated and the joined errors of any failed paths.
func (sess *Session) Wait() (int64, error) { return sess.inner.Wait() }

// PathState is one path's position in the health state machine:
// active → stalled → dead → removed.
type PathState = core.PathState

// Path health states (see Session.PathStates).
const (
	PathActive  = core.PathActive
	PathStalled = core.PathStalled
	PathDead    = core.PathDead
	PathRemoved = core.PathRemoved
)

// PathStates snapshots every path's health state, indexed by path.
func (sess *Session) PathStates() []PathState { return sess.inner.PathStates() }

// PathCounts reports how many packets each path carried.
func (s *Server) PathCounts() []int64 { return s.inner.PathCounts() }

// Trace is a client-side record of a streaming session; it exposes the
// fraction of late packets for any startup delay.
type Trace = core.Trace

// Arrival is one received-packet observation within a Trace.
type Arrival = core.Arrival

// Receive consumes a streaming session from the given path connections and
// returns the merged arrival trace.
func Receive(conns []net.Conn) (*Trace, error) { return core.Receive(conns) }

// ReadTraceCSV loads a trace previously saved with Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return core.ReadTraceCSV(r) }

// PlayerConfig configures real-time playout (see Play).
type PlayerConfig = core.PlayerConfig

// PlayerStats summarizes a live playout.
type PlayerStats = core.PlayerStats

// Play consumes a session in real time: packets are handed to the
// application at their playback slots (startup delay τ after stream start)
// and missing packets surface as glitches — the live counterpart of the
// trace analysis Receive enables.
func Play(conns []net.Conn, cfg PlayerConfig) (PlayerStats, error) {
	return core.Play(conns, cfg)
}

// RedialPolicy is a Client's reaction to a dead path: capped exponential
// backoff with deterministic seeded jitter and a per-path retry budget. The
// zero value never redials.
type RedialPolicy = core.RedialPolicy

// ReceiverOptions tunes stream reassembly (end-of-stream grace).
type ReceiverOptions = core.ReceiverOptions

// Client consumes a multipath stream and keeps its paths alive by redialing
// dead ones under a RedialPolicy; see NewStreamClient for the common
// dial-a-hub setup.
type Client = core.Client

// NewStreamClient builds a Client that dials one path per address and joins
// them all to streamID under a single fresh token. When a path dies
// mid-stream the client redials its address under policy and re-presents
// the same token, so the hub resumes the subscription (within its re-attach
// grace window) with numbering intact. Run the returned client to stream.
func NewStreamClient(addrs []string, streamID string, policy RedialPolicy) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dmpstream: no path addresses")
	}
	tok, err := core.NewToken()
	if err != nil {
		return nil, err
	}
	dests := make([]string, len(addrs))
	copy(dests, addrs)
	return &Client{
		Dial:   func(k int) (net.Conn, error) { return net.Dial("tcp", dests[k]) },
		Paths:  len(dests),
		Join:   &core.Join{StreamID: streamID, Token: tok},
		Policy: policy,
	}, nil
}

// ---------- Broadcast hub ----------

// SlowPolicy selects how a Hub treats a subscriber that lags beyond the
// configured window.
type SlowPolicy int

const (
	// DropOldest skips the laggard ahead to the oldest packet still
	// buffered, counting the skipped packets as drops.
	DropOldest SlowPolicy = SlowPolicy(hub.DropOldest)
	// Evict disconnects the laggard.
	Evict SlowPolicy = SlowPolicy(hub.Evict)
)

// HubConfig describes a broadcast hub: one live CBR source fanned out to
// many multipath subscribers.
type HubConfig struct {
	// Rate is the packet generation (= playback) rate in packets per second.
	Rate float64
	// PayloadSize is the payload bytes per packet (default 1000).
	PayloadSize int
	// Count is the number of packets to stream; 0 streams until Stop/Close.
	Count int64
	// Fill, if non-nil, fills each packet's payload with content.
	Fill func(pkt uint32, buf []byte)
	// StreamID names the stream clients join (default "live").
	StreamID string
	// LagWindow is how many packets a subscriber may lag behind the live
	// source before SlowSubscriber applies (default 1024).
	LagWindow int
	// SlowSubscriber is the policy for subscribers exceeding LagWindow.
	SlowSubscriber SlowPolicy
	// WriteStallTimeout bounds each per-path write; 0 blocks indefinitely.
	WriteStallTimeout time.Duration
	// PathWriteBuffer, when positive, caps each path's kernel send buffer.
	PathWriteBuffer int
	// ReattachGrace keeps a subscription alive after its last path dies so a
	// redialing client can resume it with the same token. 0 selects the
	// default (5s); negative disables.
	ReattachGrace time.Duration
	// ResendWindow is how many of a dead path's most recent packets are
	// retransmitted on the subscriber's other paths. 0 selects the default
	// (64); negative disables.
	ResendWindow int
	// MaxSubscribers caps concurrent subscriptions; joins beyond the cap
	// receive a typed reject frame (ErrServerFull). 0 = unlimited.
	MaxSubscribers int
	// MaxConns caps total subscriber path connections. 0 = unlimited.
	MaxConns int
	// MaxBytes is the resource governor's budget: the total bytes the hub
	// may hold buffered for subscribers. When exceeded, the laggiest
	// subscriber is degraded (backlog dropped, lag window shrunk, finally
	// evicted) until the hub is back under budget. 0 = unlimited.
	MaxBytes int64
	// JoinTimeout bounds the join handshake on an accepted connection;
	// connections that stay silent longer are cut (slowloris defense).
	// 0 selects the default (10s); negative disables.
	JoinTimeout time.Duration
	// Shards spreads the subscriber set across independent worker groups so
	// fan-out, lag enforcement and stats stop serializing on one lock.
	// 0 picks GOMAXPROCS; 1 restores the historical single-lock hub.
	Shards int
}

// Hub broadcasts a single live source to many subscribers, each running its
// own DMP multipath session joined via the wire handshake (see JoinStream).
type Hub struct{ inner *hub.Hub }

// HubStats is a point-in-time snapshot of a Hub.
type HubStats = hub.Stats

// HubSubscriberStats is one subscriber's entry within HubStats.
type HubSubscriberStats = hub.SubscriberStats

// toInternal maps the façade hub configuration onto the internal one.
func (cfg HubConfig) toInternal() hub.Config {
	return hub.Config{
		Stream: core.Config{
			Mu:                cfg.Rate,
			PayloadSize:       cfg.PayloadSize,
			Count:             cfg.Count,
			Fill:              cfg.Fill,
			WriteStallTimeout: cfg.WriteStallTimeout,
		},
		StreamID:        cfg.StreamID,
		LagWindow:       cfg.LagWindow,
		Policy:          hub.Policy(cfg.SlowSubscriber),
		PathWriteBuffer: cfg.PathWriteBuffer,
		ReattachGrace:   cfg.ReattachGrace,
		ResendWindow:    cfg.ResendWindow,
		MaxSubscribers:  cfg.MaxSubscribers,
		MaxConns:        cfg.MaxConns,
		MaxBytes:        cfg.MaxBytes,
		JoinTimeout:     cfg.JoinTimeout,
		Shards:          cfg.Shards,
	}
}

// NewHub validates cfg, starts the live generator and returns the hub.
func NewHub(cfg HubConfig) (*Hub, error) {
	inner, err := hub.New(cfg.toInternal())
	if err != nil {
		return nil, err
	}
	return &Hub{inner: inner}, nil
}

// Serve accepts subscriber path connections on ln until ln closes.
func (h *Hub) Serve(ln net.Listener) error { return h.inner.Serve(ln) }

// Attach runs the join handshake on one already-accepted connection.
func (h *Hub) Attach(conn net.Conn) error { return h.inner.Attach(conn) }

// Stop ends generation; every path drains and receives an end marker.
func (h *Hub) Stop() { h.inner.Stop() }

// Wait blocks until generation has ended and every path has drained.
func (h *Hub) Wait() { h.inner.Wait() }

// Close force-stops the hub, closing listeners and subscriber connections.
func (h *Hub) Close() { h.inner.Close() }

// BeginDrain closes admission: fresh joins are rejected with ErrDraining
// while live subscriptions (and their re-attaches) continue undisturbed.
func (h *Hub) BeginDrain() { h.inner.BeginDrain() }

// Draining reports whether admission has been closed by BeginDrain/Drain.
func (h *Hub) Draining() bool { return h.inner.Draining() }

// Drain gracefully shuts the hub down: admission closes, generation stops,
// and every subscriber path is given until timeout to drain its backlog and
// end marker. It returns true if everything drained in time; on timeout the
// hub is force-closed and Drain returns false.
func (h *Hub) Drain(timeout time.Duration) bool { return h.inner.Drain(timeout) }

// Stats returns a snapshot: subscriber count, per-subscriber lag/paths/
// drops, aggregate goodput.
func (h *Hub) Stats() HubStats { return h.inner.Stats() }

// Generated returns the number of packets generated so far.
func (h *Hub) Generated() int64 { return h.inner.Generated() }

// ---------- Stream registry ----------

// RegistryConfig describes a multi-stream registry: many live hubs behind
// one accept loop, with joins routed by the stream id in the handshake.
type RegistryConfig struct {
	// Stream is the per-stream template: every CreateStream starts a hub
	// with this configuration, with only StreamID replaced by the stream's
	// id. Zero fields take the hub defaults.
	Stream HubConfig
	// MaxStreams caps concurrently live streams; CreateStream past it
	// returns ErrMaxStreams. 0 = unlimited.
	MaxStreams int
	// MaxSubscribers caps subscriptions summed across all streams (each
	// hub's own MaxSubscribers stays strict). 0 = unlimited.
	MaxSubscribers int
	// MaxConns strictly caps attached path connections across all streams.
	// 0 = unlimited.
	MaxConns int
	// JoinTimeout bounds the join handshake on accepted connections.
	// 0 selects the default (10s).
	JoinTimeout time.Duration
}

// Registry serves many concurrent live streams behind one accept loop. Each
// stream is an independent Hub: created, ended and drained on its own, with
// joins routed by the StreamID in the handshake. Joins naming no stream are
// refused with ErrUnknownStream; joins naming an ended stream with
// ErrStreamOver, forever — stream ids are single-use.
type Registry struct{ inner *registry.Registry }

// RegistryStats is a point-in-time snapshot of a Registry.
type RegistryStats = registry.Stats

// RegistryStreamStats is one live stream's entry within RegistryStats.
type RegistryStreamStats = registry.StreamStats

// Registry lifecycle errors (use errors.Is).
var (
	// ErrStreamExists: CreateStream named a currently live stream.
	ErrStreamExists = registry.ErrStreamExists
	// ErrStreamEnded: CreateStream named an already-ended stream; ids are
	// single-use so late joiners can never splice into an unrelated
	// successor stream.
	ErrStreamEnded = registry.ErrStreamEnded
	// ErrMaxStreams: CreateStream would exceed MaxStreams.
	ErrMaxStreams = registry.ErrMaxStreams
	// ErrRegistryClosed: the registry has been closed or is draining.
	ErrRegistryClosed = registry.ErrClosed
)

// NewRegistry validates cfg and returns an empty registry; add streams with
// CreateStream.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	inner, err := registry.New(registry.Config{
		Hub:            cfg.Stream.toInternal(),
		MaxStreams:     cfg.MaxStreams,
		MaxSubscribers: cfg.MaxSubscribers,
		MaxConns:       cfg.MaxConns,
		JoinTimeout:    cfg.JoinTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &Registry{inner: inner}, nil
}

// CreateStream starts a new live stream under id and returns its hub. The
// generator starts immediately.
func (r *Registry) CreateStream(id string) (*Hub, error) {
	h, err := r.inner.Create(id)
	if err != nil {
		return nil, err
	}
	return &Hub{inner: h}, nil
}

// Stream returns the live stream's hub, or nil if id is not live.
func (r *Registry) Stream(id string) *Hub {
	h := r.inner.Hub(id)
	if h == nil {
		return nil
	}
	return &Hub{inner: h}
}

// Streams lists the live stream ids, sorted.
func (r *Registry) Streams() []string { return r.inner.Streams() }

// EndStream stops id's generator and tombstones the id: subscribers drain
// their backlog and end markers, and late joins are answered ErrStreamOver.
func (r *Registry) EndStream(id string) error { return r.inner.End(id) }

// DrainStream gracefully ends one stream: admission to it closes, the
// generator stops, and its subscribers get until timeout to drain. Sibling
// streams are undisturbed.
func (r *Registry) DrainStream(id string, timeout time.Duration) (bool, error) {
	return r.inner.DrainStream(id, timeout)
}

// Serve accepts subscriber connections on ln, routing each join to its
// stream, until ln closes.
func (r *Registry) Serve(ln net.Listener) error { return r.inner.Serve(ln) }

// Attach runs the join handshake on one already-accepted connection and
// routes it to its stream.
func (r *Registry) Attach(conn net.Conn) error { return r.inner.Attach(conn) }

// BeginDrain closes admission registry-wide: fresh joins are rejected with
// ErrDraining while live subscriptions continue undisturbed.
func (r *Registry) BeginDrain() { r.inner.BeginDrain() }

// Draining reports whether admission has been closed.
func (r *Registry) Draining() bool { return r.inner.Draining() }

// Drain gracefully shuts the whole registry down: admission closes, every
// stream's generation stops, and subscribers get until timeout to drain.
// It returns true if everything drained in time; on timeout the registry is
// force-closed and Drain returns false.
func (r *Registry) Drain(timeout time.Duration) bool { return r.inner.Drain(timeout) }

// Close force-stops every stream, closing listeners and connections.
func (r *Registry) Close() { r.inner.Close() }

// ConnCount returns the attached path connections across all streams.
func (r *Registry) ConnCount() int { return r.inner.ConnCount() }

// Stats snapshots the registry and every live stream.
func (r *Registry) Stats() RegistryStats { return r.inner.Stats() }

// Typed join-rejection errors. When a hub refuses a join it answers with a
// reject frame on the wire; clients surface it as an error matching both
// ErrRejected and the specific sentinel (use errors.Is). They propagate
// through Receive, Play and Client.Run wrapping intact.
var (
	// ErrRejected matches every reject, whatever the code.
	ErrRejected = core.ErrRejected
	// ErrServerFull: the subscriber, connection or handshake cap is reached.
	ErrServerFull = core.ErrServerFull
	// ErrUnknownStream: the stream id in the join is not served here.
	ErrUnknownStream = core.ErrUnknownStream
	// ErrStreamOver: the stream already ended.
	ErrStreamOver = core.ErrStreamOver
	// ErrDraining: the hub is shutting down and admits no new subscribers.
	ErrDraining = core.ErrDraining
	// ErrEvicted: the resource governor removed this subscriber.
	ErrEvicted = core.ErrEvicted
	// ErrUpstreamLost: the hub is an edge relay whose upstream feed is gone.
	ErrUpstreamLost = core.ErrUpstreamLost
)

// ---------- Edge relay ----------

// RelayConfig describes a fault-tolerant edge relay: it joins an upstream
// hub (a Hub served elsewhere, or another relay) as an ordinary multipath
// subscriber and re-fans the stream through a local hub — the building
// block of a distribution tree.
type RelayConfig struct {
	// Upstreams is the ranked candidate list of upstream addresses, all
	// reaching the same feed. A dying path rotates to the next candidate.
	Upstreams []string
	// StreamID names the stream to subscribe and serve (default "live").
	StreamID string
	// Paths is the number of upstream path connections (default 2).
	Paths int
	// OrphanGrace is how long the relay tolerates zero live upstream paths
	// before declaring the feed lost (default 10s). Once orphaned, live
	// subscribers get a clean end marker and new joins ErrUpstreamLost.
	OrphanGrace time.Duration
	// ReorderWindow bounds the upstream reorder buffer in packets
	// (default 256).
	ReorderWindow int
	// Downstream configures the local re-fan hub. Rate, PayloadSize, Count
	// and Fill are ignored: the relay's source is the upstream feed.
	Downstream HubConfig
}

// Relay is a fault-tolerant edge relay node; see RelayConfig.
type Relay struct{ inner *relay.Relay }

// RelayStats is a point-in-time snapshot of a Relay.
type RelayStats = relay.Stats

// NewRelay validates cfg and starts the upstream subscription. The
// downstream hub comes up once the upstream handshake reveals the stream
// geometry; Serve blocks until then.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	inner, err := relay.New(relay.Config{
		Upstreams:     cfg.Upstreams,
		StreamID:      cfg.StreamID,
		Paths:         cfg.Paths,
		OrphanGrace:   cfg.OrphanGrace,
		ReorderWindow: cfg.ReorderWindow,
		Hub:           cfg.Downstream.toInternal(),
	})
	if err != nil {
		return nil, err
	}
	return &Relay{inner: inner}, nil
}

// Serve waits for the downstream hub to come up, then accepts subscriber
// connections on ln until ln closes. If the upstream feed never
// materializes it closes ln and returns relay.ErrNoUpstream.
func (r *Relay) Serve(ln net.Listener) error { return r.inner.Serve(ln) }

// Token returns the upstream subscription token (hex); reuse it via the
// dmpedge -token flag to re-attach after a process restart.
func (r *Relay) Token() string { return r.inner.Token().String() }

// BeginDrain closes downstream admission while live subscribers continue.
func (r *Relay) BeginDrain() { r.inner.BeginDrain() }

// Drain cascades a graceful shutdown: upstream detach first, then the
// local ring flushes and every downstream path gets an end marker. It
// returns true if everything drained within timeout.
func (r *Relay) Drain(timeout time.Duration) bool { return r.inner.Drain(timeout) }

// Close force-stops the relay: upstream paths, downstream hub, listeners.
func (r *Relay) Close() { r.inner.Close() }

// Stats snapshots the relay: health state, live paths, failovers,
// forwarding counters and the downstream hub.
func (r *Relay) Stats() RelayStats { return r.inner.Stats() }

// JoinStream attaches a set of path connections to one hub subscription:
// it writes the join handshake carrying streamID and a fresh shared token
// on every connection. After it returns, the connections form one multipath
// session — hand them to Receive or Play. The hex token is returned for
// correlation with HubStats.
func JoinStream(conns []net.Conn, streamID string) (string, error) {
	tok, err := core.NewToken()
	if err != nil {
		return "", err
	}
	for _, conn := range conns {
		if err := core.WriteJoin(conn, core.Join{StreamID: streamID, Token: tok}); err != nil {
			return "", fmt.Errorf("dmpstream: join: %w", err)
		}
	}
	return tok.String(), nil
}

// DialStream dials one TCP connection per address (different addresses may
// route through different interfaces or relays — that is the multipath) and
// joins them all to streamID as a single hub subscription. On error, any
// connections already opened are closed.
func DialStream(addrs []string, streamID string) ([]net.Conn, error) {
	conns := make([]net.Conn, 0, len(addrs))
	closeAll := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for _, addr := range addrs {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			closeAll()
			return nil, err
		}
		conns = append(conns, c)
	}
	if _, err := JoinStream(conns, streamID); err != nil {
		closeAll()
		return nil, err
	}
	return conns, nil
}

// ---------- Analytical model ----------

// PathParams describes one network path for the analytical model.
type PathParams struct {
	LossRate     float64 // per-packet loss probability (0,1)
	RTT          time.Duration
	TimeoutRatio float64 // RTO/RTT, the paper's T_O (typically 1..4)
}

func (p PathParams) toModel() tcpmodel.Params {
	return tcpmodel.Params{P: p.LossRate, R: p.RTT.Seconds(), TO: p.TimeoutRatio}
}

// Model is the paper's analytical model of DMP-streaming over K paths.
type Model struct {
	Paths        []PathParams
	PlaybackRate float64 // packets per second
	// Budget bounds the Monte-Carlo effort per estimate (consumption events;
	// default 2,000,000). Larger budgets resolve smaller late fractions.
	Budget int64
	// Seed makes estimates reproducible (default 1).
	Seed int64
}

func (m Model) toInternal() (dmpmodel.Model, dmpmodel.Options) {
	paths := make([]tcpmodel.Params, len(m.Paths))
	for i, p := range m.Paths {
		paths[i] = p.toModel()
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	return dmpmodel.Model{Paths: paths, Mu: m.PlaybackRate},
		dmpmodel.Options{Seed: seed, MaxConsumptions: m.Budget}
}

// FractionLate predicts the stationary fraction of late packets for the
// given startup delay.
func (m Model) FractionLate(startupDelay time.Duration) (float64, error) {
	im, opts := m.toInternal()
	res, err := im.FractionLate(startupDelay.Seconds(), opts)
	if err != nil {
		return 0, err
	}
	return res.F, nil
}

// RequiredStartupDelay returns the smallest startup delay (0.5 s grid) that
// brings the fraction of late packets below threshold, searching up to
// maxDelay. It returns false when no delay up to maxDelay suffices.
func (m Model) RequiredStartupDelay(threshold float64, maxDelay time.Duration) (time.Duration, bool, error) {
	im, opts := m.toInternal()
	tau, err := im.RequiredStartupDelay(threshold, 0.5, maxDelay.Seconds(), opts)
	if err != nil {
		return 0, false, err
	}
	if tau > maxDelay.Seconds() {
		return 0, false, nil
	}
	return time.Duration(tau * float64(time.Second)), true, nil
}

// AggregateThroughput returns σ_a, the summed achievable TCP throughput of
// the model's paths in packets per second. The paper's headline result: DMP
// streaming performs well once σ_a ≥ 1.6 × PlaybackRate (versus 2× for a
// single path).
func (m Model) AggregateThroughput() (float64, error) {
	im, _ := m.toInternal()
	return im.AggregateThroughput()
}

// PathThroughput returns the achievable TCP throughput of a single path in
// packets per second.
func PathThroughput(p PathParams) (float64, error) {
	return dmpmodel.Sigma(p.toModel())
}

// ---------- Packet-level simulation ----------

// SimPath describes one simulated path: a bottleneck link shared with
// background traffic, as in the paper's ns validation topology (Fig. 3).
type SimPath struct {
	BottleneckMbps float64       // bottleneck bandwidth
	OneWayDelay    time.Duration // bottleneck propagation delay
	BufferPkts     int           // drop-tail buffer, packets
	FTPFlows       int           // long-lived background flows
	HTTPFlows      int           // on/off web-like background flows
}

// SimResult is the outcome of a simulated streaming session.
type SimResult struct {
	Generated  int64
	Arrived    int64
	PathCounts []int64
	report     *simstream.Stream
}

// LateFraction returns the fraction of late packets for startup delay tau
// (seconds) in playback order and in arrival order.
func (r *SimResult) LateFraction(tau float64) (playback, arrivalOrder float64) {
	return r.report.LateFraction(tau)
}

// SimulateStreaming runs DMP-streaming at `rate` packets/second for
// `duration` of simulated time over the given paths and returns the arrival
// analysis. The run is deterministic for a given seed.
func SimulateStreaming(paths []SimPath, rate float64, duration time.Duration, seed int64) (*SimResult, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dmpstream: no paths")
	}
	if rate <= 0 || duration <= 0 {
		return nil, fmt.Errorf("dmpstream: rate and duration must be positive")
	}
	s := sim.New(seed)
	var conns []*tcpsim.Conn
	var flowID netsim.FlowID = 1
	for _, p := range paths {
		env := buildSimPath(s, p, &flowID)
		id := flowID
		flowID++
		conn := tcpsim.NewConn(s, id, tcpsim.Config{})
		env.wireFlow(id, conn)
		conns = append(conns, conn)
	}
	st := simstream.New(s, simstream.VideoConfig{Mu: rate, Duration: sim.Time(duration)}, conns)
	st.Start()
	// Run past the horizon to let queued packets drain.
	s.Run(sim.Time(duration) + 120*sim.Second)
	return &SimResult{
		Generated:  st.Generated(),
		Arrived:    st.Arrived(),
		PathCounts: st.PathCounts(),
		report:     st,
	}, nil
}

// simPathEnv wires flows into one path's shared bottleneck.
type simPathEnv struct {
	s      *sim.Simulator
	p      SimPath
	bneck  *netsim.Link
	demux  map[netsim.FlowID]netsim.Sink
	flowID *netsim.FlowID
}

// buildSimPath creates the bottleneck + background load for one path.
func buildSimPath(s *sim.Simulator, p SimPath, flowID *netsim.FlowID) *simPathEnv {
	env := &simPathEnv{s: s, p: p, demux: make(map[netsim.FlowID]netsim.Sink), flowID: flowID}
	env.bneck = netsim.NewLink(s, "bneck", p.BottleneckMbps, sim.Time(p.OneWayDelay), p.BufferPkts,
		netsim.SinkFunc(func(pkt *netsim.Packet) {
			if sink, ok := env.demux[pkt.Flow]; ok {
				sink.Deliver(pkt)
			}
		}))
	for i := 0; i < p.FTPFlows; i++ {
		id := *flowID
		*flowID++
		f := trafficgen.NewFTP(s, id, tcpsim.Config{})
		env.wireFlow(id, f.Conn)
		f.Start()
	}
	for i := 0; i < p.HTTPFlows; i++ {
		h := trafficgen.NewHTTP(s, trafficgen.HTTPConfig{}, func() *tcpsim.Conn {
			id := *flowID
			*flowID++
			c := tcpsim.NewConn(s, id, tcpsim.Config{})
			env.wireFlow(id, c)
			return c
		})
		h.Start()
	}
	return env
}

// wireFlow attaches a connection's forward path through the bottleneck and a
// clean reverse path.
func (env *simPathEnv) wireFlow(id netsim.FlowID, c *tcpsim.Conn) {
	head := netsim.NewLink(env.s, "head", 100, 10*sim.Millisecond, 1<<18, nil)
	tail := netsim.NewLink(env.s, "tail", 100, 10*sim.Millisecond, 1<<18, nil)
	env.demux[id] = netsim.NewPath(c.Rcv, tail)
	fwd := netsim.NewPath(env.bneck, head)
	rev := netsim.NewLink(env.s, "rev", 100, sim.Time(env.p.OneWayDelay)+20*sim.Millisecond, 1<<18, nil)
	c.Wire(fwd, netsim.NewPath(c.Snd, rev))
}
