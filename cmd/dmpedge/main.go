// Command dmpedge runs a fault-tolerant edge relay: it joins an upstream
// hub (dmpserve, or another dmpedge) as an ordinary multipath subscriber
// and re-fans the received stream through a local hub to downstream
// subscribers — the building block of a relay tree, where the origin
// serves a handful of relays instead of every leaf directly.
//
// The upstream list is a ranked candidate set reaching the same feed; a
// path that dies rotates to the next candidate with capped backoff, and
// the subscription token is preserved across failovers (and restarts via
// -token), so the upstream replays its resend window instead of gapping
// the stream. If every candidate stays dead past -orphan-grace, the relay
// declares the feed lost: live subscribers get a clean end marker and new
// joiners a typed upstream-lost reject.
//
// Usage:
//
//	dmpserve -listen :9000 -stream live -rate 50 &
//	dmpedge  -listen :9100 -upstreams origin:9000,origin-alt:9000 -stream live
//	dmpplay  -connect edge:9100,edge:9100 -stream live
//
// An interrupt drains the cascade gracefully: upstream detach first, then
// the local ring flushes and every downstream path gets an end marker.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmpstream/internal/core"
	"dmpstream/internal/hub"
	"dmpstream/internal/relay"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9100", "downstream listen address")
		upstreams = flag.String("upstreams", "", "ranked upstream candidates, comma-separated (required)")
		stream    = flag.String("stream", "live", "stream id to subscribe and serve")
		paths     = flag.Int("paths", 2, "upstream path connections")
		tokenHex  = flag.String("token", "", "upstream subscription token, 32 hex chars (empty = random; reuse to re-attach after a restart)")
		orphan    = flag.Duration("orphan-grace", relay.DefaultOrphanGrace, "how long to tolerate zero live upstream paths before declaring the feed lost")
		reorder   = flag.Int("reorder-window", relay.DefaultReorderWindow, "upstream reorder buffer in packets")
		lag       = flag.Int("lag", 0, "local ring size in packets (0 = hub default)")
		maxSubs   = flag.Int("max-subs", 0, "downstream subscriber cap (0 = unlimited)")
		maxConns  = flag.Int("max-conns", 0, "downstream connection cap (0 = unlimited)")
		maxBytes  = flag.Int64("max-bytes", 0, "downstream buffered-bytes budget (0 = unlimited)")
		drain     = flag.Duration("drain", 15*time.Second, "graceful drain deadline on interrupt")
		verbose   = flag.Bool("v", false, "log relay state transitions and failovers")
	)
	flag.Parse()
	if *upstreams == "" {
		fmt.Fprintln(os.Stderr, "dmpedge: -upstreams is required")
		os.Exit(2)
	}
	var ups []string
	for _, u := range strings.Split(*upstreams, ",") {
		if u = strings.TrimSpace(u); u != "" {
			ups = append(ups, u)
		}
	}

	cfg := relay.Config{
		Upstreams:     ups,
		StreamID:      *stream,
		Paths:         *paths,
		OrphanGrace:   *orphan,
		ReorderWindow: *reorder,
		Hub: hub.Config{
			LagWindow:      *lag,
			MaxSubscribers: *maxSubs,
			MaxConns:       *maxConns,
			MaxBytes:       *maxBytes,
		},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	if *tokenHex != "" {
		raw, err := hex.DecodeString(*tokenHex)
		if err != nil || len(raw) != len(core.Token{}) {
			fmt.Fprintf(os.Stderr, "dmpedge: -token must be %d hex chars\n", 2*len(core.Token{}))
			os.Exit(2)
		}
		copy(cfg.Token[:], raw)
	}

	r, err := relay.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpedge: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("dmpedge: stream %q via %v, token %s\n", *stream, ups, r.Token())

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpedge: listen: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("dmpedge: serving on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		st := r.Stats()
		fmt.Printf("dmpedge: draining (state %v, forwarded %d, failovers %d)...\n",
			st.State, st.Forwarded, st.Failovers)
		if r.Drain(*drain) {
			fmt.Println("dmpedge: drained cleanly")
		} else {
			fmt.Println("dmpedge: drain deadline exceeded, closing")
		}
		r.Close()
		_ = ln.Close()
	}()

	err = r.Serve(ln)
	st := r.Stats()
	fmt.Printf("dmpedge: done: state=%v forwarded=%d lateDrops=%d gapSkips=%d failovers=%d\n",
		st.State, st.Forwarded, st.LateDrops, st.GapSkips, st.Failovers)
	if err != nil && !strings.Contains(err.Error(), "use of closed network connection") {
		fmt.Fprintf(os.Stderr, "dmpedge: %v\n", err)
		os.Exit(1)
	}
}
