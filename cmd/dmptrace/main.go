// Command dmptrace analyzes a recorded streaming trace (written by
// dmpplay -dump or dmpstream.Trace.WriteCSV): late-packet fractions across
// startup delays, the exact required delay for a quality target, delivery
// slack quantiles, per-path goodput and reordering.
//
// Usage:
//
//	dmptrace -in session.csv
//	dmptrace -in session.csv -quality 1e-3 -paths 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmpstream"
	"dmpstream/internal/core"
)

func main() {
	var (
		in      = flag.String("in", "", "trace CSV file (required)")
		quality = flag.Float64("quality", 1e-4, "late-fraction target for the required-delay report")
		paths   = flag.Int("paths", 2, "number of paths for per-path reports")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmptrace: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	trace, err := core.ReadTraceCSV(f)
	_ = f.Close()
	if err != nil {
		fatal(err)
	}
	report(trace, *quality, *paths)
}

func report(trace *dmpstream.Trace, quality float64, paths int) {
	fmt.Printf("stream: mu=%g pkts/s, payload %d B, %d packets expected, %d arrivals recorded\n",
		trace.Mu, trace.PayloadSize, trace.Expected, len(trace.Arrivals))
	fmt.Printf("cross-path reorderings: %d\n\n", trace.ReorderCount())

	fmt.Printf("%-10s %-22s %s\n", "tau (s)", "late (playback order)", "late (arrival order)")
	for _, tau := range []float64{1, 2, 4, 6, 8, 10, 15, 20} {
		pb, ao := trace.LateFraction(tau)
		fmt.Printf("%-10g %-22.3g %.3g\n", tau, pb, ao)
	}
	fmt.Println()

	if d, ok := trace.RequiredDelay(quality); ok {
		fmt.Printf("startup delay for late fraction < %g: %v\n", quality, d.Round(time.Millisecond))
	} else {
		fmt.Printf("late fraction < %g unattainable: missing packets exceed the budget\n", quality)
	}
	fmt.Printf("delivery slack quantiles: p50=%.3fs p90=%.3fs p99=%.3fs\n",
		trace.SlackQuantile(0.50), trace.SlackQuantile(0.90), trace.SlackQuantile(0.99))

	gp := trace.PathGoodput(paths)
	counts := trace.PathCounts(paths)
	for k := 0; k < paths; k++ {
		fmt.Printf("path %d: %d packets, %.1f pkts/s goodput\n", k, counts[k], gp[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmptrace:", err)
	os.Exit(1)
}
