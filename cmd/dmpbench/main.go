// Command dmpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dmpbench -list
//	dmpbench -exp fig8 -fidelity quick
//	dmpbench -exp all -fidelity full -seed 7
//
// Each experiment prints the rows/series of the corresponding table or
// figure of "Multipath Live Streaming via TCP" (CoNEXT 2007). Quick fidelity
// runs the whole suite in minutes; full fidelity reproduces paper-scale runs
// (10,000-second videos, 30 repetitions) and can take hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmpstream/internal/exps"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		fidelity = flag.String("fidelity", "quick", "quick or full")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		format   = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (want text or csv)", *format))
	}

	if *list {
		fmt.Printf("%-12s %-34s %s\n", "ID", "PAPER", "DESCRIPTION")
		for _, e := range exps.All() {
			fmt.Printf("%-12s %-34s %s\n", e.ID, e.Paper, e.Short)
		}
		return
	}

	fid, err := exps.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}

	var targets []exps.Experiment
	if *expID == "all" {
		targets = exps.All()
	} else {
		e, ok := exps.Find(*expID)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *expID))
		}
		targets = []exps.Experiment{e}
	}

	for _, e := range targets {
		start := time.Now()
		fmt.Printf("# running %s (%s)...\n", e.ID, e.Paper)
		tables, err := e.Run(fid, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for i := range tables {
			if *format == "csv" {
				tables[i].FormatCSV(os.Stdout)
			} else {
				tables[i].Format(os.Stdout)
			}
		}
		fmt.Printf("# %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpbench:", err)
	os.Exit(1)
}
