// Command dmplint runs the repo-invariant static-analysis suite over the
// module containing the working directory. It exits non-zero when any
// analyzer reports a finding, making it suitable as a Makefile/CI gate:
//
//	go run ./cmd/dmplint ./...
//
// Patterns select which packages are analyzed (go-tool style: a package
// path relative to the module root, or a prefix ending in /... for a
// subtree; default ./...). The full module is always parsed so
// cross-package inference works regardless of the pattern.
//
// Findings are suppressed with an inline `// nolint:<analyzer> <reason>`
// on the offending line, the line above it, or the enclosing function's
// doc comment; see DESIGN.md "Enforced invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dmpstream/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmplint [-list] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, module, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	analyzers := lint.DefaultAnalyzers(module)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, module, patterns)
	if len(selected) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	idx := lint.BuildIndex(module, pkgs)
	findings := lint.Run(selected, idx, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dmplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("dmplint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages filters loaded packages by go-tool style patterns
// resolved against the module root.
func selectPackages(pkgs []*lint.Package, module string, patterns []string) []*lint.Package {
	match := func(importPath string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if sub, ok := strings.CutSuffix(pat, "..."); ok {
				sub = strings.TrimSuffix(sub, "/")
				if sub == "" || rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == strings.TrimSuffix(pat, "/") || (pat == "." && rel == "") {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if match(p.ImportPath) {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmplint:", err)
	os.Exit(2)
}
