// Command dmplint runs the repo-invariant static-analysis suite over the
// module containing the working directory. It exits non-zero when any
// analyzer reports a finding, making it suitable as a Makefile/CI gate:
//
//	go run ./cmd/dmplint ./...
//
// Patterns select which packages are analyzed (go-tool style: a package
// path relative to the module root, or a prefix ending in /... for a
// subtree; default ./...). The full module is always parsed so
// cross-package inference and the whole-program concurrency pass work
// regardless of the pattern.
//
// Output and gating modes:
//
//	-json                 findings as a stable JSON schema (analyzer, pos,
//	                      severity, message, suppressed) — suppressed
//	                      findings are included and marked
//	-baseline file        fail only on findings not recorded in file
//	                      (adopt-then-burn-down)
//	-update-baseline      rewrite the -baseline file from current findings
//	-lockgraph            dump the whole-program lock-acquisition graph as
//	                      Graphviz dot and exit (cycle edges in red)
//	-bufgraph             dump the buffer-ownership borrow graph as
//	                      Graphviz dot and exit (sinks in blue)
//	-hotpaths             dump the `// hotpath` annotated roots and their
//	                      transitive callee closure and exit (with -json,
//	                      as the dmpstream/hotpaths/v1 document)
//	-copysize n           copycheck large-struct threshold in bytes
//	                      (default 128)
//	-enable a,b / -disable a,b
//	                      restrict which analyzers run
//	-cpuprofile file      write a CPU profile of the run for lint-suite
//	                      latency triage
//
// Analyzers run in parallel, bounded by GOMAXPROCS; output order is
// deterministic regardless of scheduling.
//
// Findings are suppressed with an inline `// nolint:<analyzer> <reason>`
// on the offending line, the line above it, or the enclosing function's
// doc comment; see DESIGN.md "Enforced invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"dmpstream/internal/lint"
)

// main defers to run so -cpuprofile's StopCPUProfile runs before the
// process exits — os.Exit skips defers, so the exit code travels out as
// a return value instead.
func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (stable schema, includes suppressed findings)")
	baselinePath := flag.String("baseline", "", "baseline `file`: fail only on findings not recorded in it")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit")
	lockgraph := flag.Bool("lockgraph", false, "emit the whole-program lock-acquisition graph as Graphviz dot and exit")
	bufgraph := flag.Bool("bufgraph", false, "emit the buffer-ownership borrow graph as Graphviz dot and exit")
	hotpaths := flag.Bool("hotpaths", false, "dump the hotpath roots and transitive closure and exit (honors -json)")
	copysize := flag.Int("copysize", 0, "copycheck large-struct threshold in `bytes` (0 = default 128)")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dmplint [flags] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	root, err := moduleRoot()
	if err != nil {
		return fatal(err)
	}
	pkgs, module, err := lint.Load(root)
	if err != nil {
		return fatal(err)
	}
	analyzers := lint.DefaultAnalyzers(module)
	if *copysize > 0 {
		for i, a := range analyzers {
			if a.Name == "copycheck" {
				analyzers[i] = lint.Copycheck(*copysize)
			}
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err = selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		return fatal(err)
	}

	idx := lint.BuildIndex(module, pkgs)
	if *lockgraph {
		fmt.Print(lint.LockGraphDot(idx))
		return 0
	}
	if *bufgraph {
		fmt.Print(lint.BufGraphDot(idx))
		return 0
	}
	if *hotpaths {
		d := lint.Hotpaths(idx)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(d); err != nil {
				return fatal(err)
			}
		} else {
			fmt.Print(d.Text(module))
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := selectPackages(pkgs, module, patterns)
	if len(selected) == 0 {
		return fatal(fmt.Errorf("no packages match %v", patterns))
	}

	all := lint.RunAllParallel(selected, idx, analyzers)
	active := unsuppressed(all)

	if *updateBaseline {
		if *baselinePath == "" {
			return fatal(fmt.Errorf("-update-baseline requires -baseline file"))
		}
		if err := lint.WriteBaselineFile(*baselinePath, active); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dmplint: baseline %s records %d finding(s)\n", *baselinePath, len(active))
		return 0
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaselineFile(*baselinePath)
		if err != nil {
			return fatal(err)
		}
		waived := len(active)
		active = lint.FilterBaseline(active, base)
		waived -= len(active)
		if waived > 0 {
			fmt.Fprintf(os.Stderr, "dmplint: %d finding(s) waived by baseline %s\n", waived, *baselinePath)
		}
	}

	if *jsonOut {
		// The JSON stream carries what gates (post-baseline) plus the
		// inline-suppressed findings, marked, for audits of the waivers.
		report := append([]lint.Finding{}, active...)
		for _, f := range all {
			if f.Suppressed {
				report = append(report, f)
			}
		}
		if err := lint.WriteJSON(os.Stdout, report); err != nil {
			return fatal(err)
		}
	} else {
		for _, f := range active {
			fmt.Println(f)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "dmplint: %d finding(s)\n", len(active))
		return 1
	}
	return 0
}

func unsuppressed(findings []lint.Finding) []lint.Finding {
	var out []lint.Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// selectAnalyzers applies -enable / -disable.
func selectAnalyzers(all []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	parse := func(csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if on != nil && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers left after -enable/-disable")
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("dmplint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages filters loaded packages by go-tool style patterns
// resolved against the module root.
func selectPackages(pkgs []*lint.Package, module string, patterns []string) []*lint.Package {
	match := func(importPath string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if sub, ok := strings.CutSuffix(pat, "..."); ok {
				sub = strings.TrimSuffix(sub, "/")
				if sub == "" || rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == strings.TrimSuffix(pat, "/") || (pat == "." && rel == "") {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if match(p.ImportPath) {
			out = append(out, p)
		}
	}
	return out
}

// fatal reports a usage/IO error and yields the exit code for run to
// return, keeping deferred cleanup (the CPU profile flush) alive.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "dmplint:", err)
	return 2
}
