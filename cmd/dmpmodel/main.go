// Command dmpmodel evaluates the analytical model of DMP-streaming for one
// parameter set: the predicted fraction of late packets at a startup delay,
// the required startup delay for a target quality, and the aggregate
// achievable throughput.
//
// Usage:
//
//	dmpmodel -paths 0.02:150:4,0.02:150:4 -mu 50 -tau 8
//	dmpmodel -paths 0.04:300:4,0.012:300:4 -mu 40 -threshold 1e-4
//
// Each path is loss:rtt_ms:timeout_ratio.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmpstream"
)

func main() {
	var (
		pathSpec  = flag.String("paths", "0.02:150:4,0.02:150:4", "comma-separated loss:rtt_ms:TO per path")
		mu        = flag.Float64("mu", 50, "playback rate, packets per second")
		tau       = flag.Float64("tau", 0, "startup delay in seconds (prints fraction late)")
		threshold = flag.Float64("threshold", 0, "quality bar (prints required startup delay)")
		budget    = flag.Int64("budget", 2_000_000, "Monte-Carlo consumption budget")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	paths, err := parsePaths(*pathSpec)
	if err != nil {
		fatal(err)
	}
	m := dmpstream.Model{Paths: paths, PlaybackRate: *mu, Budget: *budget, Seed: *seed}

	agg, err := m.AggregateThroughput()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("paths: %d, mu = %g pkts/s\n", len(paths), *mu)
	for i, p := range paths {
		sigma, err := dmpstream.PathThroughput(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  path %d: p=%g rtt=%v TO=%g  sigma=%.1f pkts/s\n",
			i, p.LossRate, p.RTT, p.TimeoutRatio, sigma)
	}
	fmt.Printf("aggregate achievable throughput sigma_a = %.1f pkts/s (sigma_a/mu = %.2f)\n", agg, agg/(*mu))

	if *tau > 0 {
		f, err := m.FractionLate(time.Duration(*tau * float64(time.Second)))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fraction of late packets at tau=%gs: %.3g\n", *tau, f)
	}
	if *threshold > 0 {
		d, ok, err := m.RequiredStartupDelay(*threshold, 120*time.Second)
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Printf("no startup delay up to 120s achieves late fraction < %g\n", *threshold)
		} else {
			fmt.Printf("required startup delay for late fraction < %g: %v\n", *threshold, d)
		}
	}
	if *tau == 0 && *threshold == 0 {
		fmt.Println("(pass -tau or -threshold for performance predictions)")
	}
}

func parsePaths(spec string) ([]dmpstream.PathParams, error) {
	var out []dmpstream.PathParams
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("path %q: want loss:rtt_ms:TO", part)
		}
		loss, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("path %q: bad loss: %w", part, err)
		}
		rttMs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("path %q: bad rtt: %w", part, err)
		}
		to, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("path %q: bad TO: %w", part, err)
		}
		out = append(out, dmpstream.PathParams{
			LossRate:     loss,
			RTT:          time.Duration(rttMs * float64(time.Millisecond)),
			TimeoutRatio: to,
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpmodel:", err)
	os.Exit(1)
}
