// Command dmpfanout is the massive-fanout benchmark runner: a stream
// registry serving several live streams, tens of thousands of in-process
// subscribers over buffered pipes, and schema-stable JSON out.
//
// The default -compare mode measures the same workload twice — once with
// the copy delivery path (render a private frame per subscriber) and once
// with the zero-copy path (pinned shared buffers, vectored batch writes),
// both at the same shard count — and reports both runs plus the
// delivered-throughput ratio between them. That ratio is the number the
// CI regression gate tracks: it normalizes away how fast the machine
// itself is, so a baseline recorded on one runner still gates a run on
// another. The gate also tracks allocs_per_frame and, since schema v3,
// bytes_copied_per_frame — the hub-side memcpy cost per delivered frame,
// which must stay at the patched header size on the zero-copy path
// (older baselines are migrated on load; see internal/fanout.Gate).
//
//	dmpfanout -tier quick -o BENCH_fanout.json
//	dmpfanout -check bench/BENCH_fanout_baseline.json -o BENCH_fanout.json
//
// Tiers: quick (push CI: 10k subscribers, 5s, no churn) and full
// (nightly: 50k subscribers, 20s, seeded churn). Explicit flags override
// tier presets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dmpstream/internal/fanout"
	"dmpstream/internal/hub"
)

func main() {
	var (
		tier     = flag.String("tier", "quick", "preset: quick (push CI) or full (nightly); explicit flags override")
		subs     = flag.Int("subs", 0, "total in-process subscribers (0 = tier preset)")
		streams  = flag.Int("streams", 4, "concurrent live streams")
		rate     = flag.Float64("rate", 2000, "per-stream generation rate µ in packets/second")
		payload  = flag.Int("payload", 256, "packet payload bytes")
		duration = flag.Duration("duration", 0, "measurement window (0 = tier preset)")
		window   = flag.Int("window", 1024, "hub ring size in packets")
		late     = flag.Duration("late", 150*time.Millisecond, "frame delay counted as late")
		churnF   = flag.String("churn", "", "replay the seeded churn schedule: on/off (default: tier preset)")
		seed     = flag.Int64("seed", 1, "seed for churn schedule and tokens")
		shards   = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		delivery = flag.String("delivery", "zero-copy", "delivery path for a single run: copy or zero-copy; ignored with -compare")
		compare  = flag.Bool("compare", true, "run copy and zero-copy delivery back to back")
		outPath  = flag.String("o", "BENCH_fanout.json", "output path ('-' = stdout)")
		check    = flag.String("check", "", "baseline BENCH_fanout.json to gate against (>10% ratio regression fails)")
		verbose  = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	cfg := fanout.Config{
		Streams:       *streams,
		Mu:            *rate,
		Payload:       *payload,
		LagWindow:     *window,
		LateThreshold: *late,
		Seed:          *seed,
	}
	switch *tier {
	case "quick":
		cfg.Subscribers, cfg.Duration, cfg.Churn = 10000, 5*time.Second, false
	case "full":
		cfg.Subscribers, cfg.Duration, cfg.Churn = 50000, 20*time.Second, true
	default:
		fmt.Fprintf(os.Stderr, "dmpfanout: unknown tier %q (want quick or full)\n", *tier)
		os.Exit(2)
	}
	if *subs > 0 {
		cfg.Subscribers = *subs
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	switch *churnF {
	case "":
	case "on":
		cfg.Churn = true
	case "off":
		cfg.Churn = false
	default:
		fmt.Fprintf(os.Stderr, "dmpfanout: -churn %q (want on or off)\n", *churnF)
		os.Exit(2)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dmpfanout: "+format+"\n", args...)
		}
	}

	out := fanout.Output{Schema: fanout.SchemaV3, Tier: *tier, GoMaxProcs: runtime.GOMAXPROCS(0)}
	deliveries := []hub.Delivery{hub.DeliveryCopy, hub.DeliveryZeroCopy}
	if !*compare {
		switch *delivery {
		case "copy":
			deliveries = []hub.Delivery{hub.DeliveryCopy}
		case "zero-copy":
			deliveries = []hub.Delivery{hub.DeliveryZeroCopy}
		default:
			fmt.Fprintf(os.Stderr, "dmpfanout: -delivery %q (want copy or zero-copy)\n", *delivery)
			os.Exit(2)
		}
	}
	for _, d := range deliveries {
		c := cfg
		c.Shards = *shards
		c.Delivery = d
		res, err := fanout.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: %v\n", err)
			os.Exit(2)
		}
		out.Runs = append(out.Runs, *res)
	}
	out.Finalize()

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpfanout: marshal: %v\n", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *outPath == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: write %s: %v\n", *outPath, err)
			os.Exit(2)
		}
		fmt.Printf("dmpfanout: wrote %s\n", *outPath)
	}
	for _, r := range out.Runs {
		fmt.Printf("  %-9s shards=%-2d %10.0f frames/s  p50 %7.2fms  p99 %7.2fms  late %.4f  allocs/frame %.2f  copied/frame %.0fB  writev batch %.1f\n",
			r.Label, r.Shards, r.FramesPerSec, r.P50DelayMs, r.P99DelayMs, r.LateFrac,
			r.AllocsPerFrame, r.BytesCopiedPerFrame, r.WritevFramesPerBatch)
	}
	if out.SpeedupFPS > 0 {
		fmt.Printf("  speedup (zero-copy/copy): %.2fx on %d cores\n", out.SpeedupFPS, out.GoMaxProcs)
	}

	if *check != "" {
		base, err := fanout.LoadBaseline(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: %v\n", err)
			os.Exit(2)
		}
		if err := fanout.Gate(out, base); err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("dmpfanout: no regression against baseline")
	}
}
