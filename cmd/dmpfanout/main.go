// Command dmpfanout is the massive-fanout benchmark runner: a stream
// registry serving several live streams, tens of thousands of in-process
// subscribers over net.Pipe, and schema-stable JSON out.
//
// The default -compare mode measures the same workload twice — once with
// Shards=1 (the historical single-lock hub) and once with
// Shards=GOMAXPROCS (the sharded fan-out) — and reports both runs plus
// the delivered-throughput ratio between them. That ratio is the number
// the CI regression gate tracks: it normalizes away how fast the machine
// itself is, so a baseline recorded on one runner still gates a run on
// another.
//
//	dmpfanout -tier quick -o BENCH_fanout.json
//	dmpfanout -check bench/BENCH_fanout_baseline.json -o BENCH_fanout.json
//
// Tiers: quick (push CI: 10k subscribers, 5s, no churn) and full
// (nightly: 50k subscribers, 20s, seeded churn). Explicit flags override
// tier presets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dmpstream/internal/fanout"
)

// schemaV1 names the BENCH_fanout.json layout. Bump only with an
// accompanying EXPERIMENTS.md note; consumers (the CI gate, dashboards)
// key on it.
const schemaV1 = "dmpstream/bench-fanout/v1"

// output is the BENCH_fanout.json document. Field names are
// schema-stable: add, never rename.
type output struct {
	Schema     string          `json:"schema"`
	Tier       string          `json:"tier"`
	GoMaxProcs int             `json:"go_max_procs"`
	Runs       []fanout.Result `json:"runs"`
	// SpeedupFPS is sharded delivered-frames/sec over single-lock
	// delivered-frames/sec; 0 when -compare was off.
	SpeedupFPS float64 `json:"speedup_fps"`
}

func main() {
	var (
		tier     = flag.String("tier", "quick", "preset: quick (push CI) or full (nightly); explicit flags override")
		subs     = flag.Int("subs", 0, "total in-process subscribers (0 = tier preset)")
		streams  = flag.Int("streams", 4, "concurrent live streams")
		rate     = flag.Float64("rate", 2000, "per-stream generation rate µ in packets/second")
		payload  = flag.Int("payload", 256, "packet payload bytes")
		duration = flag.Duration("duration", 0, "measurement window (0 = tier preset)")
		window   = flag.Int("window", 1024, "hub ring size in packets")
		late     = flag.Duration("late", 150*time.Millisecond, "frame delay counted as late")
		churnF   = flag.String("churn", "", "replay the seeded churn schedule: on/off (default: tier preset)")
		seed     = flag.Int64("seed", 1, "seed for churn schedule and tokens")
		shards   = flag.Int("shards", 0, "shard count for a single run (0 = GOMAXPROCS); ignored with -compare")
		compare  = flag.Bool("compare", true, "run single-lock (shards=1) and sharded back to back")
		outPath  = flag.String("o", "BENCH_fanout.json", "output path ('-' = stdout)")
		check    = flag.String("check", "", "baseline BENCH_fanout.json to gate against (>10% ratio regression fails)")
		verbose  = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	cfg := fanout.Config{
		Streams:       *streams,
		Mu:            *rate,
		Payload:       *payload,
		LagWindow:     *window,
		LateThreshold: *late,
		Seed:          *seed,
	}
	switch *tier {
	case "quick":
		cfg.Subscribers, cfg.Duration, cfg.Churn = 10000, 5*time.Second, false
	case "full":
		cfg.Subscribers, cfg.Duration, cfg.Churn = 50000, 20*time.Second, true
	default:
		fmt.Fprintf(os.Stderr, "dmpfanout: unknown tier %q (want quick or full)\n", *tier)
		os.Exit(2)
	}
	if *subs > 0 {
		cfg.Subscribers = *subs
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	switch *churnF {
	case "":
	case "on":
		cfg.Churn = true
	case "off":
		cfg.Churn = false
	default:
		fmt.Fprintf(os.Stderr, "dmpfanout: -churn %q (want on or off)\n", *churnF)
		os.Exit(2)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dmpfanout: "+format+"\n", args...)
		}
	}

	out := output{Schema: schemaV1, Tier: *tier, GoMaxProcs: runtime.GOMAXPROCS(0)}
	if *compare {
		for _, sh := range []int{1, runtime.GOMAXPROCS(0)} {
			c := cfg
			c.Shards = sh
			res, err := fanout.Run(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmpfanout: %v\n", err)
				os.Exit(2)
			}
			out.Runs = append(out.Runs, *res)
		}
		if out.Runs[0].FramesPerSec > 0 {
			out.SpeedupFPS = out.Runs[1].FramesPerSec / out.Runs[0].FramesPerSec
		}
	} else {
		c := cfg
		c.Shards = *shards
		res, err := fanout.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: %v\n", err)
			os.Exit(2)
		}
		out.Runs = append(out.Runs, *res)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpfanout: marshal: %v\n", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *outPath == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: write %s: %v\n", *outPath, err)
			os.Exit(2)
		}
		fmt.Printf("dmpfanout: wrote %s\n", *outPath)
	}
	for _, r := range out.Runs {
		fmt.Printf("  %-11s shards=%-2d %10.0f frames/s  p50 %7.2fms  p99 %7.2fms  late %.4f  allocs/frame %.2f\n",
			r.Label, r.Shards, r.FramesPerSec, r.P50DelayMs, r.P99DelayMs, r.LateFrac, r.AllocsPerFrame)
	}
	if out.SpeedupFPS > 0 {
		fmt.Printf("  speedup (sharded/single-lock): %.2fx on %d cores\n", out.SpeedupFPS, out.GoMaxProcs)
	}

	if *check != "" {
		if err := gate(out, *check); err != nil {
			fmt.Fprintf(os.Stderr, "dmpfanout: REGRESSION: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("dmpfanout: no regression against baseline")
	}
}

// gate compares a fresh run against the committed baseline. The primary
// gate is the sharded/single-lock throughput ratio, which is
// machine-normalized: a >10% drop fails wherever the baseline was
// recorded. Absolute delivered throughput is gated only when the runner
// shape (GOMAXPROCS) matches the baseline's, since raw frames/sec across
// different machines measures the machine, not the code.
func gate(cur output, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != schemaV1 {
		return fmt.Errorf("baseline schema %q, want %q", base.Schema, schemaV1)
	}
	const tolerance = 0.9
	if base.SpeedupFPS > 0 && cur.SpeedupFPS > 0 && base.GoMaxProcs > 1 && cur.GoMaxProcs > 1 {
		// On a single-core runner both compare runs collapse to shards=1 and
		// the "ratio" is run-to-run noise, so the ratio gate only applies when
		// both sides actually exercised sharding on multiple cores.
		if cur.SpeedupFPS < tolerance*base.SpeedupFPS {
			return fmt.Errorf("speedup ratio %.3f fell below 90%% of baseline %.3f",
				cur.SpeedupFPS, base.SpeedupFPS)
		}
	}
	if cur.GoMaxProcs == base.GoMaxProcs && cur.Tier == base.Tier &&
		len(cur.Runs) > 0 && len(base.Runs) > 0 &&
		cur.Runs[0].Subscribers == base.Runs[0].Subscribers {
		curBest := cur.Runs[len(cur.Runs)-1].FramesPerSec
		baseBest := base.Runs[len(base.Runs)-1].FramesPerSec
		if baseBest > 0 && curBest < tolerance*baseBest {
			return fmt.Errorf("delivered %.0f frames/s fell below 90%% of baseline %.0f (same %d-core shape)",
				curBest, baseBest, base.GoMaxProcs)
		}
	}
	return nil
}
