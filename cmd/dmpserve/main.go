// Command dmpserve broadcasts live CBR sources to any number of multipath
// subscribers. It runs a single accept loop: each incoming TCP connection
// presents a join handshake naming a stream id and a subscriber token, and
// connections sharing a token form one multipath DMP session. Subscribers
// that stop keeping up are skipped ahead (drop-oldest) or disconnected
// (evict) once they lag more than the configured window.
//
// Several streams can be served at once behind the same listener: give
// -stream more than one id (repeat the flag or comma-separate) and joins
// are routed by the stream id in the handshake. Joins naming no stream get
// a typed unknown-stream reject. Every stream runs from the same template
// (-rate, -lag, -policy, the caps — all per stream).
//
// Usage:
//
//	dmpserve -listen 0.0.0.0:9000 -rate 50 -payload 1000 -count 0 \
//	         -stream live -lag 1024 -policy drop -stall 5s
//
//	dmpserve -listen 0.0.0.0:9000 -stream news,sports -stream music
//
// Overload protection caps admission and buffered bytes per stream, and an
// interrupt drains gracefully instead of cutting subscribers off:
//
//	dmpserve -listen 0.0.0.0:9000 -max-subs 100 -max-conns 400 \
//	         -max-bytes 33554432 -join-timeout 5s -drain 15s
//
// Pair with dmpplay joining one of the stream ids (possibly through
// different network interfaces or relays — that is the multipath):
//
//	dmpplay -connect server:9000,server:9000 -stream sports
//
// To scale beyond one machine's fan-out, put dmpedge relays in front:
// each edge relay joins this server as a single multipath subscriber
// (its join sets the absolute-numbering flag, so packet identity is
// preserved across tiers) and re-fans the stream locally.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmpstream"
)

// streamList collects -stream values: the flag may be repeated and each
// value may be a comma-separated list of ids.
type streamList []string

func (s *streamList) String() string { return strings.Join(*s, ",") }

func (s *streamList) Set(v string) error {
	for _, id := range strings.Split(v, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			return fmt.Errorf("empty stream id in %q", v)
		}
		for _, have := range *s {
			if have == id {
				return fmt.Errorf("duplicate stream id %q", id)
			}
		}
		*s = append(*s, id)
	}
	return nil
}

func main() {
	var streams streamList
	var (
		listen  = flag.String("listen", "127.0.0.1:9000", "accept-loop listen address")
		rate    = flag.Float64("rate", 50, "packets per second, per stream")
		payload = flag.Int("payload", 1000, "payload bytes per packet")
		count   = flag.Int64("count", 0, "packets to stream per stream (0 = until interrupted)")
		lag     = flag.Int("lag", 1024, "max packets a subscriber may lag before the policy applies")
		policy  = flag.String("policy", "drop", "slow-subscriber policy: drop (skip ahead) or evict")
		stall   = flag.Duration("stall", 0, "per-path write stall timeout (0 = block forever)")
		sndbuf  = flag.Int("sndbuf", 0, "per-path TCP send buffer bytes (0 = kernel default; small values make backpressure prompt)")
		grace   = flag.Duration("grace", 0, "re-attach grace: how long a subscription outlives its last path (0 = default 5s, negative = off)")
		resend  = flag.Int("resend", 0, "dead-path resend window, packets (0 = default 64, negative = off)")
		shards  = flag.Int("shards", 0, "fan-out worker shards per stream (0 = GOMAXPROCS, 1 = single lock)")
		statsIv = flag.Duration("stats", 5*time.Second, "stats print interval (0 = quiet)")
		maxSubs = flag.Int("max-subs", 0, "max concurrent subscribers per stream; excess joins get a typed reject (0 = unlimited)")
		maxConn = flag.Int("max-conns", 0, "max subscriber path connections per stream (0 = unlimited)")
		maxByte = flag.Int64("max-bytes", 0, "per-stream resource-governor byte budget; laggards are degraded to stay under it (0 = unlimited)")
		joinTo  = flag.Duration("join-timeout", 0, "join handshake deadline, slowloris defense (0 = default 10s, negative = off)")
		drainTo = flag.Duration("drain", 10*time.Second, "graceful-drain budget on interrupt before force close")
	)
	flag.Var(&streams, "stream", "stream id subscribers may join; repeat or comma-separate for several (default live)")
	flag.Parse()
	if len(streams) == 0 {
		streams = streamList{"live"}
	}

	var pol dmpstream.SlowPolicy
	switch *policy {
	case "drop":
		pol = dmpstream.DropOldest
	case "evict":
		pol = dmpstream.Evict
	default:
		fatal(fmt.Errorf("unknown policy %q (want drop or evict)", *policy))
	}

	reg, err := dmpstream.NewRegistry(dmpstream.RegistryConfig{
		Stream: dmpstream.HubConfig{
			Rate:              *rate,
			PayloadSize:       *payload,
			Count:             *count,
			LagWindow:         *lag,
			SlowSubscriber:    pol,
			WriteStallTimeout: *stall,
			PathWriteBuffer:   *sndbuf,
			ReattachGrace:     *grace,
			ResendWindow:      *resend,
			MaxSubscribers:    *maxSubs,
			MaxConns:          *maxConn,
			MaxBytes:          *maxByte,
			Shards:            *shards,
		},
		JoinTimeout: *joinTo,
	})
	if err != nil {
		fatal(err)
	}
	hubs := make([]*dmpstream.Hub, 0, len(streams))
	for _, id := range streams {
		h, err := reg.CreateStream(id)
		if err != nil {
			fatal(err)
		}
		hubs = append(hubs, h)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("broadcasting %s at %g pkts/s each on %s (lag window %d, policy %s)\n",
		quoted(streams), *rate, ln.Addr(), *lag, *policy)

	serveDone := make(chan error, 1)
	go func() { serveDone <- reg.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsIv > 0 {
		t := time.NewTicker(*statsIv)
		defer t.Stop()
		tick = t.C
	}
	allDone := make(chan struct{})
	go func() { // with -count, every stream ends on its own
		for _, h := range hubs {
			h.Wait()
		}
		close(allDone)
	}()

loop:
	for {
		select {
		case <-tick:
			printStats(reg.Stats())
		case <-sig:
			fmt.Printf("interrupt: draining subscribers (budget %v; signal again to force close)\n", *drainTo)
			_ = ln.Close() // stop admitting before the drain, not after
			drained := make(chan bool, 1)
			go func() { drained <- reg.Drain(*drainTo) }()
			select {
			case ok := <-drained:
				if ok {
					fmt.Println("drain complete: every path got its end marker")
				} else {
					fmt.Println("drain budget exhausted: remaining connections force-closed")
				}
			case <-sig:
				fmt.Println("second interrupt: force closing")
				reg.Close()
				<-drained
			}
			break loop
		case <-allDone:
			break loop
		case err := <-serveDone:
			// The accept loop already retries temporary errors with backoff;
			// an error here means the listener is gone. Log it and drain —
			// live subscribers should not die because accept did.
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmpserve: accept loop:", err)
			}
			break loop
		}
	}
	_ = ln.Close()
	for _, h := range hubs {
		h.Stop()
	}
	for _, h := range hubs {
		h.Wait()
	}
	printStats(reg.Stats())
}

func quoted(ids []string) string {
	q := make([]string, len(ids))
	for i, id := range ids {
		q[i] = fmt.Sprintf("%q", id)
	}
	return strings.Join(q, ", ")
}

func printStats(st dmpstream.RegistryStats) {
	if st.Rejected > 0 || st.Handshaking > 0 || st.Draining {
		state := ""
		if st.Draining {
			state = ", draining"
		}
		fmt.Printf("registry: %d conn(s), rejected %d (unknown %d, ended %d), %d in handshake%s\n",
			st.Conns, st.Rejected, st.UnknownStream, st.StreamEnded, st.Handshaking, state)
	}
	for _, s := range st.Streams {
		h := s.Hub
		state := ""
		if h.Draining {
			state = ", draining"
		}
		fmt.Printf("[%7.1fs] %s: generated %d, sent %d, dropped %d, evicted %d, resent %d, reattached %d, goodput %.1f pkts/s, %d subscriber(s)%s\n",
			h.Elapsed.Seconds(), s.ID, h.Generated, h.Sent, h.Dropped, h.Evicted, h.Resent, h.Reattached, h.GoodputPkts, h.Subscribers, state)
		if h.Rejected+h.Shed+h.BytesHeld > 0 {
			fmt.Printf("  overload: rejected %d, shed %d, %d bytes held\n",
				h.Rejected, h.Shed, h.BytesHeld)
		}
		for _, sub := range h.Subs {
			fmt.Printf("  sub %s: %d path(s), lag %d, sent %d, dropped %d, deaths %d, resend-pending %d\n",
				sub.Token[:8], sub.Paths, sub.Lag, sub.Sent, sub.Dropped, sub.Deaths, sub.Pending)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpserve:", err)
	os.Exit(1)
}
