// Command dmpserve streams a live CBR source over multiple TCP paths using
// DMP-streaming. It listens on one address per path, waits for a client
// connection on each, then streams.
//
// Usage:
//
//	dmpserve -listen 0.0.0.0:9001,0.0.0.0:9002 -rate 50 -payload 1000 -count 3000
//
// Pair with dmpplay connecting to the same addresses (possibly through
// different network interfaces or relays — that is the multipath).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"dmpstream"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9001,127.0.0.1:9002", "comma-separated listen addresses, one per path")
		rate    = flag.Float64("rate", 50, "packets per second")
		payload = flag.Int("payload", 1000, "payload bytes per packet")
		count   = flag.Int64("count", 0, "packets to stream (0 = until interrupted)")
	)
	flag.Parse()

	addrs := strings.Split(*listen, ",")
	srv, err := dmpstream.NewServer(dmpstream.StreamConfig{
		Rate:        *rate,
		PayloadSize: *payload,
		Count:       *count,
	})
	if err != nil {
		fatal(err)
	}

	conns := make([]net.Conn, len(addrs))
	for i, addr := range addrs {
		ln, err := net.Listen("tcp", strings.TrimSpace(addr))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("path %d: waiting for client on %s\n", i, ln.Addr())
		conn, err := ln.Accept()
		ln.Close()
		if err != nil {
			fatal(err)
		}
		conns[i] = conn
		fmt.Printf("path %d: client %s connected\n", i, conn.RemoteAddr())
	}

	fmt.Printf("streaming at %g pkts/s over %d paths...\n", *rate, len(conns))
	n, err := srv.Serve(conns)
	for _, c := range conns {
		c.Close()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done: %d packets generated, per-path counts %v\n", n, srv.PathCounts())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpserve:", err)
	os.Exit(1)
}
