// Command dmpserve broadcasts a live CBR source to any number of multipath
// subscribers. It runs a single accept loop: each incoming TCP connection
// presents a join handshake naming a stream id and a subscriber token, and
// connections sharing a token form one multipath DMP session. Subscribers
// that stop keeping up are skipped ahead (drop-oldest) or disconnected
// (evict) once they lag more than the configured window.
//
// Usage:
//
//	dmpserve -listen 0.0.0.0:9000 -rate 50 -payload 1000 -count 0 \
//	         -stream live -lag 1024 -policy drop -stall 5s
//
// Overload protection caps admission and buffered bytes, and an interrupt
// drains gracefully instead of cutting subscribers off:
//
//	dmpserve -listen 0.0.0.0:9000 -max-subs 100 -max-conns 400 \
//	         -max-bytes 33554432 -join-timeout 5s -drain 15s
//
// Pair with dmpplay joining the same stream id (possibly through different
// network interfaces or relays — that is the multipath):
//
//	dmpplay -connect server:9000,server:9000 -stream live
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmpstream"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9000", "accept-loop listen address")
		rate    = flag.Float64("rate", 50, "packets per second")
		payload = flag.Int("payload", 1000, "payload bytes per packet")
		count   = flag.Int64("count", 0, "packets to stream (0 = until interrupted)")
		stream  = flag.String("stream", "live", "stream id subscribers must join")
		lag     = flag.Int("lag", 1024, "max packets a subscriber may lag before the policy applies")
		policy  = flag.String("policy", "drop", "slow-subscriber policy: drop (skip ahead) or evict")
		stall   = flag.Duration("stall", 0, "per-path write stall timeout (0 = block forever)")
		sndbuf  = flag.Int("sndbuf", 0, "per-path TCP send buffer bytes (0 = kernel default; small values make backpressure prompt)")
		grace   = flag.Duration("grace", 0, "re-attach grace: how long a subscription outlives its last path (0 = default 5s, negative = off)")
		resend  = flag.Int("resend", 0, "dead-path resend window, packets (0 = default 64, negative = off)")
		statsIv = flag.Duration("stats", 5*time.Second, "stats print interval (0 = quiet)")
		maxSubs = flag.Int("max-subs", 0, "max concurrent subscribers; excess joins get a typed reject (0 = unlimited)")
		maxConn = flag.Int("max-conns", 0, "max subscriber path connections (0 = unlimited)")
		maxByte = flag.Int64("max-bytes", 0, "resource-governor byte budget; laggards are degraded to stay under it (0 = unlimited)")
		joinTo  = flag.Duration("join-timeout", 0, "join handshake deadline, slowloris defense (0 = default 10s, negative = off)")
		drainTo = flag.Duration("drain", 10*time.Second, "graceful-drain budget on interrupt before force close")
	)
	flag.Parse()

	var pol dmpstream.SlowPolicy
	switch *policy {
	case "drop":
		pol = dmpstream.DropOldest
	case "evict":
		pol = dmpstream.Evict
	default:
		fatal(fmt.Errorf("unknown policy %q (want drop or evict)", *policy))
	}

	h, err := dmpstream.NewHub(dmpstream.HubConfig{
		Rate:              *rate,
		PayloadSize:       *payload,
		Count:             *count,
		StreamID:          *stream,
		LagWindow:         *lag,
		SlowSubscriber:    pol,
		WriteStallTimeout: *stall,
		PathWriteBuffer:   *sndbuf,
		ReattachGrace:     *grace,
		ResendWindow:      *resend,
		MaxSubscribers:    *maxSubs,
		MaxConns:          *maxConn,
		MaxBytes:          *maxByte,
		JoinTimeout:       *joinTo,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("broadcasting %q at %g pkts/s on %s (lag window %d, policy %s)\n",
		*stream, *rate, ln.Addr(), *lag, *policy)

	serveDone := make(chan error, 1)
	go func() { serveDone <- h.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsIv > 0 {
		t := time.NewTicker(*statsIv)
		defer t.Stop()
		tick = t.C
	}
	hubDone := make(chan struct{})
	go func() { // with -count, the stream ends on its own
		h.Wait()
		close(hubDone)
	}()

loop:
	for {
		select {
		case <-tick:
			printStats(h.Stats())
		case <-sig:
			fmt.Printf("interrupt: draining subscribers (budget %v; signal again to force close)\n", *drainTo)
			_ = ln.Close() // stop admitting before the drain, not after
			drained := make(chan bool, 1)
			go func() { drained <- h.Drain(*drainTo) }()
			select {
			case ok := <-drained:
				if ok {
					fmt.Println("drain complete: every path got its end marker")
				} else {
					fmt.Println("drain budget exhausted: remaining connections force-closed")
				}
			case <-sig:
				fmt.Println("second interrupt: force closing")
				h.Close()
				<-drained
			}
			break loop
		case <-hubDone:
			break loop
		case err := <-serveDone:
			// The accept loop already retries temporary errors with backoff;
			// an error here means the listener is gone. Log it and drain —
			// live subscribers should not die because accept did.
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmpserve: accept loop:", err)
			}
			break loop
		}
	}
	_ = ln.Close()
	h.Stop()
	h.Wait()
	printStats(h.Stats())
}

func printStats(st dmpstream.HubStats) {
	state := ""
	if st.Draining {
		state = ", draining"
	}
	fmt.Printf("[%7.1fs] generated %d, sent %d, dropped %d, evicted %d, resent %d, reattached %d, goodput %.1f pkts/s, %d subscriber(s)%s\n",
		st.Elapsed.Seconds(), st.Generated, st.Sent, st.Dropped, st.Evicted, st.Resent, st.Reattached, st.GoodputPkts, st.Subscribers, state)
	if st.Rejected+st.Shed+st.BytesHeld+int64(st.Handshaking) > 0 {
		fmt.Printf("  overload: rejected %d, shed %d, %d bytes held, %d in handshake\n",
			st.Rejected, st.Shed, st.BytesHeld, st.Handshaking)
	}
	for _, s := range st.Subs {
		fmt.Printf("  sub %s: %d path(s), lag %d, sent %d, dropped %d, deaths %d, resend-pending %d\n",
			s.Token[:8], s.Paths, s.Lag, s.Sent, s.Dropped, s.Deaths, s.Pending)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpserve:", err)
	os.Exit(1)
}
