// Command dmprelay runs a WAN-emulation TCP relay: it forwards connections
// to a backend through a token-bucket rate limit, a propagation delay, and
// optional random congestion episodes. Use it to test DMP-streaming (or any
// TCP application) over controlled path conditions.
//
// Naming note: despite the name, dmprelay is a network *impairment* relay
// (an emunet path emulator), not a stream distribution relay. The edge
// relay that joins an upstream hub and re-fans the stream to downstream
// subscribers is the dmpedge command.
//
// Example:
//
//	dmprelay -listen :9001 -backend server:9101 -rate 100 -delay 40ms &
//	dmprelay -listen :9002 -backend server:9102 -rate 30  -delay 120ms -episodes &
//	dmpplay -connect localhost:9001,localhost:9002
//
// A -faults script injects scheduled path failures (offsets from startup):
// drop resets every live connection (RST), stall/unstall blackholes the
// relay while keeping connections open, sever closes them cleanly (FIN).
// The listener survives every fault, so redials get fresh connections:
//
//	dmprelay -listen :9002 -backend server:9102 -faults 'sever@5s,stall@20s,unstall@25s'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dmpstream/internal/emunet"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9001", "listen address")
		backend  = flag.String("backend", "", "backend address to forward to (required)")
		rateKBps = flag.Float64("rate", 0, "forwarding rate in KiB/s (0 = unlimited)")
		delay    = flag.Duration("delay", 0, "one-way propagation delay")
		buffer   = flag.Int("buffer", 64, "relay buffering in KiB")
		down     = flag.Bool("downstream", false, "impair the backend→client direction (for hub subscribers)")
		episodes = flag.Bool("episodes", false, "enable random congestion episodes")
		epRate   = flag.Float64("episode-rate", 0.1, "episodes per second")
		epDur    = flag.Duration("episode-duration", 2*time.Second, "mean episode duration")
		epFactor = flag.Float64("episode-factor", 0.1, "rate multiplier during an episode")
		seed     = flag.Int64("seed", 1, "episode process seed")
		faults   = flag.String("faults", "", "scheduled fault script, e.g. 'drop@5s,stall@20s,unstall@25s,sever@40s'")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage of dmprelay (WAN-emulation impairment relay):\n"+
				"  note: for the stream *distribution* edge relay (upstream hub -> local fan-out),\n"+
				"  use dmpedge instead.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *backend == "" {
		fmt.Fprintln(os.Stderr, "dmprelay: -backend is required")
		os.Exit(2)
	}

	cfg := emunet.PathConfig{
		RateBps:    *rateKBps * 1024,
		Delay:      *delay,
		BufferKiB:  *buffer,
		Seed:       *seed,
		Downstream: *down,
	}
	if *episodes {
		cfg.EpisodeRate = *epRate
		cfg.EpisodeDuration = *epDur
		cfg.EpisodeFactor = *epFactor
	}
	events, err := emunet.ParseFaultScript(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmprelay:", err)
		os.Exit(2)
	}

	relay, err := emunet.Listen(*listen, *backend, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmprelay:", err)
		os.Exit(1)
	}
	fmt.Printf("relaying %s -> %s (rate %v KiB/s, delay %v, episodes %v)\n",
		relay.Addr(), *backend, *rateKBps, *delay, *episodes)
	if len(events) > 0 {
		tl := relay.Schedule(events)
		defer tl.Stop()
		fmt.Printf("fault timeline armed: %s\n", emunet.FormatFaultScript(events))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = relay.Close()
	fmt.Printf("forwarded %d bytes\n", relay.BytesForwarded.Load())
}
