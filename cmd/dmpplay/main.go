// Command dmpplay receives a DMP-streaming session over multiple TCP paths
// and reports late-packet statistics for a range of startup delays.
//
// Against the classic one-client server (one listen address per path):
//
//	dmpplay -connect 127.0.0.1:9001,127.0.0.1:9002 -delays 2,4,6,8,10
//
// Against a broadcast hub (dmpserve), -stream performs the join handshake:
// every connection carries the stream id and a shared subscriber token, so
// all paths attach to the same subscription. The addresses may repeat the
// hub address or point at relays/interfaces routing to it:
//
//	dmpplay -connect server:9000,server:9000 -stream live
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dmpstream"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:9001,127.0.0.1:9002", "comma-separated server addresses, one per path")
		stream  = flag.String("stream", "", "join this hub stream id (empty = classic single-client server)")
		delays  = flag.String("delays", "2,4,6,8,10", "startup delays (seconds) to analyze")
		dump    = flag.String("dump", "", "save the trace as CSV for dmptrace")
	)
	flag.Parse()

	addrs := strings.Split(*connect, ",")
	conns := make([]net.Conn, len(addrs))
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", strings.TrimSpace(addr))
		if err != nil {
			fatal(err)
		}
		conns[i] = conn
		fmt.Printf("path %d: connected to %s\n", i, addr)
	}
	if *stream != "" {
		token, err := dmpstream.JoinStream(conns, *stream)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("joined stream %q as subscriber %s over %d paths\n", *stream, token[:8], len(conns))
	}

	trace, err := dmpstream.Receive(conns)
	for _, c := range conns {
		_ = c.Close()
	}
	if err != nil {
		fatal(err)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace saved to %s\n", *dump)
	}

	fmt.Printf("received %d of %d packets (rate %g pkts/s, payload %dB)\n",
		len(trace.Arrivals), trace.Expected, trace.Mu, trace.PayloadSize)
	fmt.Printf("cross-path reorderings: %d\n", trace.ReorderCount())
	fmt.Printf("per-path arrivals: %v\n", trace.PathCounts(len(conns)))
	fmt.Printf("%-10s %-22s %s\n", "tau (s)", "late (playback order)", "late (arrival order)")
	for _, s := range strings.Split(*delays, ",") {
		tau, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(err)
		}
		pb, ao := trace.LateFraction(tau)
		fmt.Printf("%-10g %-22.3g %.3g\n", tau, pb, ao)
	}

	if d, ok := trace.RequiredDelay(1e-4); ok {
		fmt.Printf("startup delay for <1e-4 late: %v\n", d.Round(time.Millisecond))
	} else {
		fmt.Println("startup delay for <1e-4 late: unattainable (missing packets)")
	}
	fmt.Printf("delivery slack p50/p99: %.3fs / %.3fs\n",
		trace.SlackQuantile(0.50), trace.SlackQuantile(0.99))
	fmt.Printf("per-path goodput (pkts/s): %v\n", roundAll(trace.PathGoodput(len(conns))))
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10)) / 10
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpplay:", err)
	os.Exit(1)
}
