// Command dmpplay receives a DMP-streaming session over multiple TCP paths
// and reports late-packet statistics for a range of startup delays.
//
// Against the classic one-client server (one listen address per path):
//
//	dmpplay -connect 127.0.0.1:9001,127.0.0.1:9002 -delays 2,4,6,8,10
//
// Against a broadcast hub (dmpserve), -stream performs the join handshake:
// every connection carries the stream id and a shared subscriber token, so
// all paths attach to the same subscription. The addresses may repeat the
// hub address or point at relays/interfaces routing to it:
//
//	dmpplay -connect server:9000,server:9000 -stream live
//
// With -redial (hub mode only), a path that dies mid-stream is redialed
// under capped exponential backoff and re-attached to the same subscription:
//
//	dmpplay -connect server:9000,server:9000 -stream live \
//	        -redial 500ms -redial-max 10s -redial-budget 8
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dmpstream"
)

func main() {
	var (
		connect    = flag.String("connect", "127.0.0.1:9001,127.0.0.1:9002", "comma-separated server addresses, one per path")
		stream     = flag.String("stream", "", "join this hub stream id (empty = classic single-client server)")
		delays     = flag.String("delays", "2,4,6,8,10", "startup delays (seconds) to analyze")
		dump       = flag.String("dump", "", "save the trace as CSV for dmptrace")
		redial     = flag.Duration("redial", 0, "redial dead paths after this base backoff (0 = off; requires -stream)")
		redialMax  = flag.Duration("redial-max", 10*time.Second, "backoff cap for -redial")
		redialBudg = flag.Int("redial-budget", 0, "max redials per path (0 = unlimited)")
		redialJit  = flag.Float64("redial-jitter", 0, "fraction of each backoff delay randomized [0,1)")
		redialSeed = flag.Int64("redial-seed", 1, "jitter seed (per-path RNG seeded with seed+path)")
	)
	flag.Parse()

	addrs := strings.Split(*connect, ",")
	for i, addr := range addrs {
		addrs[i] = strings.TrimSpace(addr)
	}

	var trace *dmpstream.Trace
	var err error
	if *redial > 0 {
		if *stream == "" {
			fatal(fmt.Errorf("-redial needs -stream: only a hub subscription survives a re-attach"))
		}
		client, cerr := dmpstream.NewStreamClient(addrs, *stream, dmpstream.RedialPolicy{
			Base:   *redial,
			Max:    *redialMax,
			Budget: *redialBudg,
			Jitter: *redialJit,
			Seed:   *redialSeed,
		})
		if cerr != nil {
			fatal(cerr)
		}
		client.OnPathUp = func(path, attempt int) {
			if attempt == 0 {
				fmt.Printf("path %d: connected to %s\n", path, addrs[path])
			} else {
				fmt.Printf("path %d: re-attached to %s (redial %d)\n", path, addrs[path], attempt)
			}
		}
		client.OnPathDown = func(path int, err error) {
			fmt.Printf("path %d: down: %v\n", path, err)
		}
		fmt.Printf("joining stream %q over %d paths with redial (base %v)\n", *stream, len(addrs), *redial)
		trace, err = client.Run()
	} else {
		conns := make([]net.Conn, len(addrs))
		for i, addr := range addrs {
			conn, derr := net.Dial("tcp", addr)
			if derr != nil {
				fatal(derr)
			}
			conns[i] = conn
			fmt.Printf("path %d: connected to %s\n", i, addr)
		}
		if *stream != "" {
			token, jerr := dmpstream.JoinStream(conns, *stream)
			if jerr != nil {
				fatal(jerr)
			}
			fmt.Printf("joined stream %q as subscriber %s over %d paths\n", *stream, token[:8], len(conns))
		}
		trace, err = dmpstream.Receive(conns)
		for _, c := range conns {
			_ = c.Close()
		}
	}
	if err != nil {
		fatal(err)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace saved to %s\n", *dump)
	}

	fmt.Printf("received %d of %d packets (rate %g pkts/s, payload %dB)\n",
		len(trace.Arrivals), trace.Expected, trace.Mu, trace.PayloadSize)
	if trace.Duplicates > 0 {
		fmt.Printf("duplicate retransmissions discarded: %d\n", trace.Duplicates)
	}
	fmt.Printf("cross-path reorderings: %d\n", trace.ReorderCount())
	fmt.Printf("per-path arrivals: %v\n", trace.PathCounts(len(addrs)))
	fmt.Printf("%-10s %-22s %s\n", "tau (s)", "late (playback order)", "late (arrival order)")
	for _, s := range strings.Split(*delays, ",") {
		tau, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(err)
		}
		pb, ao := trace.LateFraction(tau)
		fmt.Printf("%-10g %-22.3g %.3g\n", tau, pb, ao)
	}

	if d, ok := trace.RequiredDelay(1e-4); ok {
		fmt.Printf("startup delay for <1e-4 late: %v\n", d.Round(time.Millisecond))
	} else {
		fmt.Println("startup delay for <1e-4 late: unattainable (missing packets)")
	}
	fmt.Printf("delivery slack p50/p99: %.3fs / %.3fs\n",
		trace.SlackQuantile(0.50), trace.SlackQuantile(0.99))
	fmt.Printf("per-path goodput (pkts/s): %v\n", roundAll(trace.PathGoodput(len(addrs))))
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10)) / 10
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpplay:", err)
	os.Exit(1)
}
