// Command dmpsim runs one packet-level DMP-streaming simulation over two
// bottleneck paths with background traffic and reports the late-packet
// fractions for a range of startup delays.
//
// Usage:
//
//	dmpsim -path1 3.7:40:50 -path2 3.7:1:50 -ftp 9 -http 40 -mu 50 -dur 400
//
// Each path is bandwidth_mbps:delay_ms:buffer_pkts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmpstream"
)

func main() {
	var (
		p1   = flag.String("path1", "3.7:40:50", "path 1: mbps:delay_ms:buffer_pkts")
		p2   = flag.String("path2", "3.7:1:50", "path 2: mbps:delay_ms:buffer_pkts")
		ftp  = flag.Int("ftp", 9, "background FTP flows per path")
		http = flag.Int("http", 40, "background HTTP flows per path")
		mu   = flag.Float64("mu", 50, "playback rate, packets per second")
		dur  = flag.Float64("dur", 400, "video duration, simulated seconds")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var paths []dmpstream.SimPath
	for _, spec := range []string{*p1, *p2} {
		sp, err := parsePath(spec, *ftp, *http)
		if err != nil {
			fatal(err)
		}
		paths = append(paths, sp)
	}

	res, err := dmpstream.SimulateStreaming(paths, *mu, time.Duration(*dur*float64(time.Second)), *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d packets, %d arrived\n", res.Generated, res.Arrived)
	fmt.Printf("path shares: %v\n", res.PathCounts)
	fmt.Printf("%-8s %-22s %s\n", "tau (s)", "late (playback order)", "late (arrival order)")
	for _, tau := range []float64{2, 4, 6, 8, 10, 15, 20} {
		pb, ao := res.LateFraction(tau)
		fmt.Printf("%-8g %-22.3g %.3g\n", tau, pb, ao)
	}
}

func parsePath(spec string, ftp, http int) (dmpstream.SimPath, error) {
	fields := strings.Split(spec, ":")
	if len(fields) != 3 {
		return dmpstream.SimPath{}, fmt.Errorf("path %q: want mbps:delay_ms:buffer_pkts", spec)
	}
	mbps, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return dmpstream.SimPath{}, err
	}
	delayMs, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return dmpstream.SimPath{}, err
	}
	buf, err := strconv.Atoi(fields[2])
	if err != nil {
		return dmpstream.SimPath{}, err
	}
	return dmpstream.SimPath{
		BottleneckMbps: mbps,
		OneWayDelay:    time.Duration(delayMs * float64(time.Millisecond)),
		BufferPkts:     buf,
		FTPFlows:       ftp,
		HTTPFlows:      http,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpsim:", err)
	os.Exit(1)
}
