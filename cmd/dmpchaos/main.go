// Command dmpchaos soaks a broadcast hub under a seeded random schedule
// of joins, abrupt leaves, overload bursts, path flaps and stalls, and
// fails loudly if any robustness invariant breaks: untyped join
// failures, byte-budget overruns, lost packets for surviving
// subscribers, drain misses, or leaked goroutines.
//
// A failing run reproduces from its seed:
//
//	dmpchaos -seed 1 -duration 30s
//
// The nightly CI soak runs exactly that under the race detector.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmpstream/internal/chaos"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed driving the whole schedule (0 = derive from time)")
		duration = flag.Duration("duration", 30*time.Second, "length of the churn schedule")
		rate     = flag.Float64("rate", 300, "stream rate µ in packets/second")
		payload  = flag.Int("payload", 64, "packet payload bytes")
		stayers  = flag.Int("stayers", 2, "full-run multipath subscribers that must conserve the stream")
		burst    = flag.Int("burst", 6, "joiners per overload burst")
		maxSubs  = flag.Int("max-subs", 0, "hub subscriber cap (0 = stayers+4, -1 = unlimited)")
		maxBytes = flag.Int64("max-bytes", 96<<10, "hub resource-governor budget in bytes (-1 = unlimited)")
		meanGap  = flag.Duration("mean-gap", 120*time.Millisecond, "mean pause between churn events")
		verbose  = flag.Bool("v", false, "log every event and violation as it happens")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("dmpchaos: seed=%d duration=%v rate=%g stayers=%d burst=%d\n",
		*seed, *duration, *rate, *stayers, *burst)

	cfg := chaos.Config{
		Seed:           *seed,
		Duration:       *duration,
		Mu:             *rate,
		Payload:        *payload,
		Stayers:        *stayers,
		Burst:          *burst,
		MaxSubscribers: *maxSubs,
		MaxBytes:       *maxBytes,
		MeanGap:        *meanGap,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpchaos: setup failed (seed %d): %v\n", *seed, err)
		os.Exit(2)
	}

	fmt.Printf("events=%d flaps=%d stalls=%d joins=%d leaves=%d rejected=%d drained=%v\n",
		rep.Events, rep.Flaps, rep.Stalls, rep.Joins, rep.Leaves, rep.Rejected, rep.Drained)
	fmt.Printf("hub: generated=%d sent=%d dropped=%d shed=%d evicted=%d bytesHeld=%d pathErrors=%d\n",
		rep.Final.Generated, rep.Final.Sent, rep.Final.Dropped, rep.Final.Shed,
		rep.Final.Evicted, rep.Final.BytesHeld, rep.Final.PathErrors)
	for i, s := range rep.Stayers {
		status := "ok"
		if s.Err != "" {
			status = s.Err
		}
		fmt.Printf("stayer %d: %d/%d packets (%s)\n", i, s.Received, s.Expected, status)
	}
	fmt.Printf("goroutines: %d -> %d\n", rep.GoroutinesStart, rep.GoroutinesEnd)

	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "dmpchaos: %d violation(s) at seed %d:\n", len(rep.Violations), rep.Seed)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "reproduce: dmpchaos -seed %d -duration %v\n", rep.Seed, *duration)
		os.Exit(1)
	}
	fmt.Println("dmpchaos: all invariants held")
}
