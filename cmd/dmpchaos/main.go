// Command dmpchaos soaks a broadcast hub under a seeded random schedule
// of joins, abrupt leaves, overload bursts, path flaps and stalls, and
// fails loudly if any robustness invariant breaks: untyped join
// failures, byte-budget overruns, lost packets for surviving
// subscribers, drain misses, or leaked goroutines.
//
// A failing run reproduces from its seed:
//
//	dmpchaos -seed 1 -duration 30s
//
// With -multi the same engine soaks a stream registry instead: several
// concurrent live streams behind one accept loop, churn spread across
// the stream ids, one stream ended mid-run, with per-stream conservation
// and registry-wide invariants checked throughout:
//
//	dmpchaos -multi -streams 4 -seed 1 -duration 30s
//
// With -tree it soaks a whole distribution tree: an origin hub feeding
// -depth tiers of -relays edge relays with dual-homed leaves underneath,
// while the schedule severs origin paths and kills/restarts relays
// mid-tier. Every leaf must conserve the stream exactly; -report writes
// the per-tier conservation record as JSON (the CI artifact):
//
//	dmpchaos -tree -relays 2 -depth 2 -seed 1 -duration 30s -report tree.json
//
// The nightly CI soak runs all three under the race detector.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dmpstream/internal/chaos"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed driving the whole schedule (0 = derive from time)")
		duration = flag.Duration("duration", 30*time.Second, "length of the churn schedule")
		rate     = flag.Float64("rate", 300, "stream rate µ in packets/second")
		payload  = flag.Int("payload", 64, "packet payload bytes")
		stayers  = flag.Int("stayers", 2, "full-run multipath subscribers that must conserve the stream")
		burst    = flag.Int("burst", 6, "joiners per overload burst")
		maxSubs  = flag.Int("max-subs", 0, "subscriber cap (0 = default, -1 = unlimited)")
		maxBytes = flag.Int64("max-bytes", 96<<10, "per-hub resource-governor budget in bytes (-1 = unlimited)")
		meanGap  = flag.Duration("mean-gap", 120*time.Millisecond, "mean pause between churn events")
		multi    = flag.Bool("multi", false, "soak a multi-stream registry instead of a single hub")
		streams  = flag.Int("streams", 4, "concurrent live streams (-multi only)")
		tree     = flag.Bool("tree", false, "soak a relay distribution tree instead of a single hub")
		relays   = flag.Int("relays", 2, "relays per tier (-tree only)")
		depth    = flag.Int("depth", 2, "relay tiers between origin and leaves (-tree only)")
		leaves   = flag.Int("leaves", 4, "leaf subscribers under the deepest tier (-tree only)")
		kills    = flag.Int("kills", 2, "max relay kill/restart events (-tree only)")
		report   = flag.String("report", "", "write the JSON conservation report to this file (-tree only)")
		verbose  = flag.Bool("v", false, "log every event and violation as it happens")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	var logf func(format string, args ...any)
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}

	if *tree {
		runTree(*seed, *duration, *rate, *payload, *relays, *depth, *leaves, *kills, *report, logf)
		return
	}
	if *multi {
		runMulti(*seed, *duration, *rate, *payload, *streams, *maxSubs, *maxBytes, *meanGap, logf)
		return
	}

	fmt.Printf("dmpchaos: seed=%d duration=%v rate=%g stayers=%d burst=%d\n",
		*seed, *duration, *rate, *stayers, *burst)
	rep, err := chaos.Run(chaos.Config{
		Seed:           *seed,
		Duration:       *duration,
		Mu:             *rate,
		Payload:        *payload,
		Stayers:        *stayers,
		Burst:          *burst,
		MaxSubscribers: *maxSubs,
		MaxBytes:       *maxBytes,
		MeanGap:        *meanGap,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpchaos: setup failed (seed %d): %v\n", *seed, err)
		os.Exit(2)
	}

	fmt.Printf("events=%d flaps=%d stalls=%d joins=%d leaves=%d rejected=%d drained=%v\n",
		rep.Events, rep.Flaps, rep.Stalls, rep.Joins, rep.Leaves, rep.Rejected, rep.Drained)
	fmt.Printf("hub: generated=%d sent=%d dropped=%d shed=%d evicted=%d bytesHeld=%d pathErrors=%d\n",
		rep.Final.Generated, rep.Final.Sent, rep.Final.Dropped, rep.Final.Shed,
		rep.Final.Evicted, rep.Final.BytesHeld, rep.Final.PathErrors)
	for i, s := range rep.Stayers {
		status := "ok"
		if s.Err != "" {
			status = s.Err
		}
		fmt.Printf("stayer %d: %d/%d packets (%s)\n", i, s.Received, s.Expected, status)
	}
	fmt.Printf("goroutines: %d -> %d\n", rep.GoroutinesStart, rep.GoroutinesEnd)

	exitReport(rep.Seed, *duration, "", rep.Violations)
}

func runMulti(seed int64, duration time.Duration, rate float64, payload, streams, maxSubs int,
	maxBytes int64, meanGap time.Duration, logf func(string, ...any)) {
	fmt.Printf("dmpchaos: multi seed=%d duration=%v rate=%g streams=%d\n",
		seed, duration, rate, streams)
	rep, err := chaos.RunMulti(chaos.MultiConfig{
		Seed:           seed,
		Duration:       duration,
		Streams:        streams,
		Mu:             rate,
		Payload:        payload,
		MaxSubscribers: maxSubs,
		MaxBytes:       maxBytes,
		MeanGap:        meanGap,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpchaos: setup failed (seed %d): %v\n", seed, err)
		os.Exit(2)
	}

	fmt.Printf("events=%d joins=%d leaves=%d rejected=%d endedMid=%s drained=%v\n",
		rep.Events, rep.Joins, rep.Leaves, rep.Rejected, rep.EndedMid, rep.Drained)
	for _, ss := range rep.Final.Streams {
		fmt.Printf("stream %s: generated=%d sent=%d dropped=%d shed=%d evicted=%d bytesHeld=%d\n",
			ss.ID, ss.Hub.Generated, ss.Hub.Sent, ss.Hub.Dropped, ss.Hub.Shed,
			ss.Hub.Evicted, ss.Hub.BytesHeld)
	}
	ids := make([]string, 0, len(rep.Stayers))
	for id := range rep.Stayers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := rep.Stayers[id]
		status := "ok"
		if s.Err != "" {
			status = s.Err
		}
		fmt.Printf("stayer %s: %d/%d packets (%s)\n", id, s.Received, s.Expected, status)
	}
	fmt.Printf("goroutines: %d -> %d\n", rep.GoroutinesStart, rep.GoroutinesEnd)

	exitReport(rep.Seed, duration, " -multi", rep.Violations)
}

func runTree(seed int64, duration time.Duration, rate float64, payload, relays, depth, leaves, kills int,
	reportPath string, logf func(string, ...any)) {
	fmt.Printf("dmpchaos: tree seed=%d duration=%v rate=%g relays=%d depth=%d leaves=%d\n",
		seed, duration, rate, relays, depth, leaves)
	rep, err := chaos.RunTree(chaos.TreeConfig{
		Seed:          seed,
		Duration:      duration,
		Mu:            rate,
		Payload:       payload,
		RelaysPerTier: relays,
		Depth:         depth,
		Leaves:        leaves,
		Kills:         kills,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpchaos: setup failed (seed %d): %v\n", seed, err)
		os.Exit(2)
	}

	fmt.Printf("events=%d severs=%d drops=%d kills=%d drained=%v\n",
		rep.Events, rep.Severs, rep.Drops, rep.Kills, rep.Drained)
	fmt.Printf("origin: generated=%d sent=%d dropped=%d resent=%d reattached=%d\n",
		rep.Origin.Generated, rep.Origin.Sent, rep.Origin.Dropped,
		rep.Origin.Resent, rep.Origin.Reattached)
	for _, rr := range rep.Relays {
		fmt.Printf("relay t%d/%d: state=%s restarts=%d failovers=%d forwarded=%d lateDrops=%d gapSkips=%d sourceGaps=%d\n",
			rr.Tier, rr.Index, rr.State, rr.Restarts, rr.Failovers,
			rr.Forwarded, rr.LateDrops, rr.GapSkips, rr.SourceGaps)
	}
	for i, lf := range rep.LeafReports {
		status := "ok"
		if lf.Err != "" {
			status = lf.Err
		}
		fmt.Printf("leaf %d: %d packets from #%d of %d expected (%s)\n",
			i, lf.Received, lf.MinPkt, lf.Expected, status)
	}
	fmt.Printf("goroutines: %d -> %d\n", rep.GoroutinesStart, rep.GoroutinesEnd)

	if reportPath != "" {
		blob, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(reportPath, blob, 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "dmpchaos: report: %v\n", jerr)
			os.Exit(2)
		}
		fmt.Printf("conservation report written to %s\n", reportPath)
	}

	exitReport(rep.Seed, duration, " -tree", rep.Violations)
}

func exitReport(seed int64, duration time.Duration, mode string, violations []string) {
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "dmpchaos: %d violation(s) at seed %d:\n", len(violations), seed)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "reproduce: dmpchaos%s -seed %d -duration %v\n", mode, seed, duration)
		os.Exit(1)
	}
	fmt.Println("dmpchaos: all invariants held")
}
