// Capacity planning with the analytical model: the two questions from the
// paper's introduction, answered without sending a packet.
//
//  1. A video is watchable over one access link. Can two links, EACH WITH
//     HALF the achievable TCP throughput, carry the same video?
//  2. A video is watchable over one access link. Can two such links (e.g.
//     ADSL subscriptions from two providers) carry a video with TWICE the
//     bitrate?
//
// The paper's answer to both is yes, because multipath streaming reaches
// satisfactory quality at sigma_a/mu = 1.6 whereas a single path needs 2.0.
//
// Run: go run ./examples/capacity-planning
package main

import (
	"fmt"
	"log"
	"time"

	"dmpstream"
)

func main() {
	const (
		mu        = 50.0 // video playback rate, packets/s (600 kbit/s at 1500 B)
		threshold = 1e-4 // "satisfactory": less than 1 packet in 10,000 late
		maxDelay  = 60 * time.Second
	)

	// A single path provisioned at the paper's single-path rule of thumb:
	// achievable TCP throughput = 2x the video bitrate (sigma ≈ 100 pkts/s).
	single := dmpstream.PathParams{LossRate: 0.01, RTT: 79 * time.Millisecond, TimeoutRatio: 2}
	sigma, err := dmpstream.PathThroughput(single)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference single path: sigma = %.1f pkts/s (sigma/mu = %.2f)\n\n", sigma, sigma/mu)

	report := func(name string, m dmpstream.Model) {
		agg, err := m.AggregateThroughput()
		if err != nil {
			log.Fatal(err)
		}
		delay, ok, err := m.RequiredStartupDelay(threshold, maxDelay)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NOT SATISFIED within 60s"
		if ok {
			verdict = fmt.Sprintf("satisfied with %v startup delay", delay.Round(500*time.Millisecond))
		}
		fmt.Printf("%-34s sigma_a/mu = %.2f -> %s\n", name, agg/m.PlaybackRate, verdict)
	}

	report("single path, 1x bitrate:", dmpstream.Model{
		Paths: []dmpstream.PathParams{single}, PlaybackRate: mu, Seed: 1,
	})

	// Question 1: two half-throughput paths (double the RTT halves sigma).
	half := single
	half.RTT = single.RTT * 2
	report("two half paths, 1x bitrate:", dmpstream.Model{
		Paths: []dmpstream.PathParams{half, half}, PlaybackRate: mu, Seed: 1,
	})

	// Question 2: two full paths, double the bitrate.
	report("two full paths, 2x bitrate:", dmpstream.Model{
		Paths: []dmpstream.PathParams{single, single}, PlaybackRate: 2 * mu, Seed: 1,
	})

	fmt.Println("\nThe multipath configurations run at sigma_a/mu = 2.0, comfortably above")
	fmt.Println("the 1.6 the paper finds sufficient — so both answers are yes, with a few")
	fmt.Println("seconds of startup delay.")
}
