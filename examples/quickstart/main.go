// Quickstart: stream a live source over two TCP paths with DMP-streaming and
// report late-packet statistics.
//
// The server generates a 100 pkt/s CBR stream (≈0.8 Mbit/s) and stripes it
// over two loopback TCP connections; the client reassembles by packet number
// and evaluates the fraction of late packets for several startup delays.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"dmpstream"
)

func main() {
	const paths = 2
	srv, err := dmpstream.NewServer(dmpstream.StreamConfig{
		Rate:        100,  // packets per second
		PayloadSize: 1000, // bytes per packet
		Count:       500,  // stream 5 seconds of video
	})
	if err != nil {
		log.Fatal(err)
	}

	// One TCP connection per path. In a real deployment these would go over
	// different interfaces or providers; here both are loopback.
	serverConns := make([]net.Conn, paths)
	clientConns := make([]net.Conn, paths)
	for i := 0; i < paths; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		accepted := make(chan net.Conn, 1)
		go func() {
			c, err := ln.Accept()
			if err == nil {
				accepted <- c
			}
		}()
		clientConns[i], err = net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		serverConns[i] = <-accepted
		_ = ln.Close()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Serve(serverConns); err != nil {
			log.Printf("serve: %v", err)
		}
		for _, c := range serverConns {
			_ = c.Close()
		}
	}()

	trace, err := dmpstream.Receive(clientConns)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("received %d/%d packets, per-path split %v, reorderings %d\n",
		len(trace.Arrivals), trace.Expected, trace.PathCounts(paths), trace.ReorderCount())
	for _, tau := range []float64{0.1, 0.5, 1.0} {
		playback, arrival := trace.LateFraction(tau)
		fmt.Printf("startup delay %4.1fs: late fraction %.4f (playback order), %.4f (arrival order)\n",
			tau, playback, arrival)
	}
}
