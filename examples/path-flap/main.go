// Path flap: one of two hub paths is killed mid-stream, the client redials
// it under its backoff policy, and the subscription survives the flap.
//
// A broadcast hub streams to a two-path subscriber. Path 1 runs through a
// WAN-emulation relay carrying a scripted fault timeline: at t=5s the relay
// severs every connection (the path dies), at t=10s the client's redial gets
// through and re-attaches with the original token. The hub keeps the
// subscription alive over the gap (re-attach grace) and replays the dead
// path's resend window on the surviving path, so the stream completes with
// no missing packets — the client just sees a handful of deduplicated
// retransmissions.
//
// Run: go run ./examples/path-flap
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"dmpstream"
	"dmpstream/internal/emunet"
)

func main() {
	const (
		rate    = 50.0 // packets/s
		payload = 500  // bytes
		seconds = 15
	)
	h, err := dmpstream.NewHub(dmpstream.HubConfig{
		Rate: rate, PayloadSize: payload, Count: rate * seconds,
		StreamID:          "flap",
		WriteStallTimeout: 2 * time.Second,
		ReattachGrace:     10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go h.Serve(ln)

	// Path 0 dials the hub directly; path 1 goes through the faulty relay.
	relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()
	events, err := emunet.ParseFaultScript("sever@5s")
	if err != nil {
		log.Fatal(err)
	}
	tl := relay.Schedule(events)
	defer tl.Stop()

	addrs := []string{ln.Addr().String(), relay.Addr()}
	client, err := dmpstream.NewStreamClient(addrs, "flap", dmpstream.RedialPolicy{
		Base:       5 * time.Second, // death at t=5s + 5s backoff = redial at t=10s
		Multiplier: 1,
		Budget:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	client.OnPathDown = func(path int, err error) {
		fmt.Printf("[%5.1fs] path %d down: %v\n", time.Since(start).Seconds(), path, err)
	}
	client.OnPathUp = func(path, attempt int) {
		if attempt == 0 {
			fmt.Printf("[%5.1fs] path %d attached\n", time.Since(start).Seconds(), path)
		} else {
			fmt.Printf("[%5.1fs] path %d re-attached (redial %d)\n", time.Since(start).Seconds(), path, attempt)
		}
	}

	fmt.Printf("streaming %d packets at %g pkts/s; path 1 is severed at t=5s...\n",
		int(rate*seconds), rate)
	trace, err := client.Run()
	if err != nil {
		log.Fatal(err)
	}
	h.Stop()
	h.Wait()

	st := h.Stats()
	fmt.Printf("\nreceived %d/%d packets, %d missing\n",
		len(trace.Arrivals), trace.Expected, len(trace.Missing()))
	fmt.Printf("hub resent %d packets from the dead path's window; %d duplicate(s) discarded client-side\n",
		st.Resent, trace.Duplicates)
	fmt.Printf("re-attaches honored by the hub: %d\n", st.Reattached)
	for _, tau := range []float64{1, 4, 8} {
		playback, _ := trace.LateFraction(tau)
		fmt.Printf("startup delay %2.0fs: late fraction %.4f\n", tau, playback)
	}
	fmt.Println("\nThe token in the re-sent join is the whole recovery protocol:")
	fmt.Println("same subscription, same rebased numbering, no wire change.")
}
