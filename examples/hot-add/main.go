// Hot-add: grow a live stream's path set while it is running.
//
// The stream starts on a single rate-limited path that cannot carry the full
// video rate, so the server queue backs up and packets run late. Two seconds
// in, a second path joins via Session.AddPath; DMP-streaming immediately
// starts striping across both, the backlog drains and lateness stops — no
// renegotiation, no restart.
//
// Run: go run ./examples/hot-add
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"dmpstream"
	"dmpstream/internal/emunet"
)

const (
	rate    = 100.0 // packets per second
	payload = 500   // bytes → video needs ≈50 KB/s
	seconds = 10
)

// dialPath creates one relay-impaired path and returns both endpoints.
func dialPath(rateBps float64) (server, client net.Conn, cleanup func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), emunet.PathConfig{
		RateBps: rateBps, Delay: 20 * time.Millisecond, BufferKiB: 16,
	})
	if err != nil {
		_ = ln.Close()
		return nil, nil, nil, err
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		_ = ln.Close()
		if err == nil {
			accepted <- c
		}
	}()
	server, err = net.Dial("tcp", relay.Addr())
	if err != nil {
		_ = relay.Close()
		return nil, nil, nil, err
	}
	if tc, ok := server.(*net.TCPConn); ok {
		tc.SetWriteBuffer(16 * 1024)
	}
	client = <-accepted
	return server, client, func() { _ = relay.Close() }, nil
}

func main() {
	srv, err := dmpstream.NewServer(dmpstream.StreamConfig{
		Rate: rate, PayloadSize: payload, Count: rate * seconds,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Path 0 alone: 30 KB/s < the 52 KB/s the stream needs.
	s0, c0, cleanup0, err := dialPath(30e3)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup0()
	s1, c1, cleanup1, err := dialPath(60e3)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup1()

	sess := srv.Start()
	sess.AddPath(s0)
	fmt.Println("streaming on one undersized path; adding a second path in 2s...")
	go func() {
		time.Sleep(2 * time.Second)
		idx := sess.AddPath(s1)
		fmt.Printf("path %d joined the live session\n", idx)
	}()

	var trace *dmpstream.Trace
	var rErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		trace, rErr = dmpstream.Receive([]net.Conn{c0, c1})
	}()

	if _, err := sess.Wait(); err != nil {
		log.Printf("path errors: %v", err)
	}
	_ = s0.Close()
	_ = s1.Close()
	wg.Wait()
	if rErr != nil {
		log.Fatal(rErr)
	}

	counts := srv.PathCounts()
	fmt.Printf("\nreceived %d/%d packets; path split %v\n",
		len(trace.Arrivals), trace.Expected, counts)
	for _, tau := range []float64{1, 2, 4} {
		playback, _ := trace.LateFraction(tau)
		fmt.Printf("startup delay %2.0fs: late fraction %.4f\n", tau, playback)
	}
	fmt.Println("\nLateness concentrates in the single-path prefix; once path 1 joined,")
	fmt.Println("the queue drained and the rest of the stream arrived on time.")
}
