// Path failover: one of two paths collapses mid-stream and DMP-streaming
// shifts the load to the healthy path without any explicit signaling.
//
// Both paths run through WAN-emulation relays. Path 1 suffers a long, deep
// congestion episode in the middle of the session (its rate drops to 5% for
// ~10 seconds). Because senders only fetch packets from the shared server
// queue when their TCP send buffer has room, the congested path simply stops
// fetching and the healthy path carries the stream — the paper's Section 7.3
// argument, live.
//
// Run: go run ./examples/path-failover
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"dmpstream"
	"dmpstream/internal/emunet"
)

func main() {
	const (
		rate    = 80.0 // packets/s
		payload = 500  // bytes
		seconds = 20
	)
	srv, err := dmpstream.NewServer(dmpstream.StreamConfig{
		Rate: rate, PayloadSize: payload, Count: rate * seconds,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Path 0: healthy, can carry the whole stream alone (80 KB/s > 41 KB/s).
	// Path 1: same nominal rate but hit by frequent deep congestion episodes.
	cfgs := []emunet.PathConfig{
		{RateBps: 80e3, Delay: 20 * time.Millisecond, BufferKiB: 16},
		{RateBps: 80e3, Delay: 20 * time.Millisecond, BufferKiB: 16,
			EpisodeRate: 0.2, EpisodeDuration: 8 * time.Second, EpisodeFactor: 0.05, Seed: 42},
	}

	serverConns := make([]net.Conn, 2)
	clientConns := make([]net.Conn, 2)
	for i, cfg := range cfgs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer relay.Close()
		accepted := make(chan net.Conn, 1)
		go func() {
			c, err := ln.Accept()
			_ = ln.Close()
			if err == nil {
				accepted <- c
			}
		}()
		serverConns[i], err = net.Dial("tcp", relay.Addr())
		if err != nil {
			log.Fatal(err)
		}
		if tc, ok := serverConns[i].(*net.TCPConn); ok {
			tc.SetWriteBuffer(16 * 1024)
		}
		clientConns[i] = <-accepted
	}

	fmt.Printf("streaming %d packets at %g pkts/s; path 1 will suffer deep congestion episodes...\n",
		int(rate*seconds), rate)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Serve(serverConns); err != nil {
			log.Printf("serve: %v", err)
		}
		for _, c := range serverConns {
			_ = c.Close()
		}
	}()

	trace, err := dmpstream.Receive(clientConns)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	counts := srv.PathCounts()
	fmt.Printf("\nreceived %d/%d packets\n", len(trace.Arrivals), trace.Expected)
	fmt.Printf("path 0 (healthy)   carried %d packets\n", counts[0])
	fmt.Printf("path 1 (congested) carried %d packets\n", counts[1])
	for _, tau := range []float64{1, 4, 8, 12} {
		playback, _ := trace.LateFraction(tau)
		fmt.Printf("startup delay %3.0fs: late fraction %.4f\n", tau, playback)
	}
	fmt.Println("\nNo probing, no signaling: the congested path's full send buffer")
	fmt.Println("simply stopped it from fetching packets from the server queue.")
}
