// Broadcast: one live source fanned out to three concurrent multipath
// subscribers through a hub.
//
// A single CBR generator (200 pkt/s ≈ 0.8 Mbit/s) feeds a broadcast hub;
// three subscribers each join the stream over two paths. Every subscriber's
// second path runs through its own emunet WAN relay — rate-limited in the
// hub→subscriber direction, and subscriber C's relay additionally suffers
// periodic deep congestion episodes. Send-buffer backpressure shifts each
// subscriber's load toward its healthy path independently of its peers, and
// the hub reports per-subscriber lag/drops plus aggregate goodput.
//
// Run: go run ./examples/broadcast
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"dmpstream"
	"dmpstream/internal/emunet"
)

func main() {
	const (
		rate    = 200.0 // packets per second
		payload = 500   // bytes per packet
		count   = 1000  // 5 seconds of video
	)
	hub, err := dmpstream.NewHub(dmpstream.HubConfig{
		Rate:           rate,
		PayloadSize:    payload,
		Count:          count,
		StreamID:       "live",
		LagWindow:      512,
		SlowSubscriber: dmpstream.DropOldest,
		// Small per-path send buffers make backpressure prompt: a congested
		// relay path blocks its sender after a few frames, so the healthy
		// path picks up the load instead of packets queueing behind the
		// episode (the paper's send-buffer-granularity argument, §3).
		PathWriteBuffer: 16 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go hub.Serve(ln)

	// One WAN relay per subscriber for its second path. Downstream:true
	// impairs the hub→subscriber direction (the subscriber dials the hub).
	// Subscriber C's relay collapses to 15 KB/s for 400 ms of every 1.5 s.
	episodes := emunet.NewPeriodicEpisodes(1500*time.Millisecond, 400*time.Millisecond, 500*time.Millisecond)
	defer episodes.Stop()
	relayCfg := []emunet.PathConfig{
		{RateBps: 120e3, Delay: 20 * time.Millisecond, BufferKiB: 32, Downstream: true},
		{RateBps: 60e3, Delay: 40 * time.Millisecond, BufferKiB: 32, Downstream: true},
		{RateBps: 60e3, Delay: 40 * time.Millisecond, BufferKiB: 32, Downstream: true,
			EpisodeFactor: 0.25, Shared: episodes},
	}
	names := []string{"A (fast relay)", "B (slow relay)", "C (slow relay + episodes)"}

	var wg sync.WaitGroup
	results := make([]string, len(relayCfg))
	for i, cfg := range relayCfg {
		relay, err := emunet.Listen("127.0.0.1:0", ln.Addr().String(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer relay.Close()

		// Path 0 direct, path 1 through the relay — then one join
		// handshake attaches both connections to a single subscription.
		conns, err := dmpstream.DialStream([]string{ln.Addr().String(), relay.Addr()}, "live")
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, conns []net.Conn) {
			defer wg.Done()
			trace, err := dmpstream.Receive(conns)
			for _, c := range conns {
				_ = c.Close()
			}
			if err != nil {
				results[i] = fmt.Sprintf("receive failed: %v", err)
				return
			}
			pb1, _ := trace.LateFraction(1)
			pb2, _ := trace.LateFraction(2)
			results[i] = fmt.Sprintf("%d/%d packets, per-path %v, late(τ=1s)=%.3f late(τ=2s)=%.3f",
				len(trace.Arrivals), trace.Expected, trace.PathCounts(len(conns)), pb1, pb2)
		}(i, conns)
	}

	// Watch the hub while the stream runs.
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
watch:
	for {
		select {
		case <-ticker.C:
			st := hub.Stats()
			fmt.Printf("[hub] t=%4.1fs generated %4d, %d subscribers, goodput %.0f pkts/s\n",
				st.Elapsed.Seconds(), st.Generated, st.Subscribers, st.GoodputPkts)
		case <-done:
			break watch
		}
	}

	hub.Stop()
	hub.Wait()
	st := hub.Stats()
	fmt.Printf("\nbroadcast of %d packets to 3 subscribers complete (sent %d, dropped %d, aggregate goodput %.0f pkts/s)\n",
		st.Generated, st.Sent, st.Dropped, st.GoodputPkts)
	for i, r := range results {
		fmt.Printf("  subscriber %-28s %s\n", names[i]+":", r)
	}
}
