// Simulated dumbbell: run DMP-streaming inside the packet-level simulator
// over two congested bottlenecks shared with FTP and HTTP background flows —
// the paper's ns validation topology (Fig. 3, Table 1 configuration 2) —
// and print the late-packet curve.
//
// This takes a few seconds of CPU and simulates 400 seconds of video
// deterministically (same seed, same result).
//
// Run: go run ./examples/simulated-dumbbell
package main

import (
	"fmt"
	"log"
	"time"

	"dmpstream"
)

func main() {
	// Table 1, configuration 2: 3.7 Mbps bottleneck, 1 ms propagation,
	// 50-packet drop-tail buffer, shared with 9 FTP + 40 HTTP flows.
	path := dmpstream.SimPath{
		BottleneckMbps: 3.7,
		OneWayDelay:    time.Millisecond,
		BufferPkts:     50,
		FTPFlows:       9,
		HTTPFlows:      40,
	}

	fmt.Println("simulating 400s of 50 pkt/s video over two congested bottlenecks...")
	res, err := dmpstream.SimulateStreaming(
		[]dmpstream.SimPath{path, path},
		50,              // packets per second (600 kbit/s video)
		400*time.Second, // simulated duration
		1,               // seed
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d packets, %d arrived, path split %v\n",
		res.Generated, res.Arrived, res.PathCounts)
	fmt.Printf("%-14s %-24s %s\n", "startup delay", "late (playback order)", "late (arrival order)")
	for _, tau := range []float64{2, 4, 6, 8, 10, 15} {
		playback, arrival := res.LateFraction(tau)
		fmt.Printf("%-14v %-24.4g %.4g\n", time.Duration(tau*float64(time.Second)), playback, arrival)
	}
	fmt.Println("\nThe two orderings nearly coincide — the paper's out-of-order argument")
	fmt.Println("(Section 4.1) — and a few seconds of startup delay absorb congestion.")
}
