module dmpstream

go 1.22
